//! # mdbgp-stream — online streaming ingestion + incremental partition
//! maintenance
//!
//! The paper's GD partitioner is offline: it assumes the whole graph up
//! front. The production setting it targets — social-network sharding —
//! sees a continuous stream of new vertices, edges and weight drift. This
//! crate keeps a partition valid and high-quality as the graph evolves,
//! without rerunning GD from scratch:
//!
//! * [`DynamicGraph`] — a base CSR plus delta adjacency and a tombstone
//!   set for removals, with periodic compaction, so reads stay cheap and
//!   refinement always runs on plain CSR ([`dynamic`]);
//! * [`UpdateBatch`] / [`StreamUpdate`] — the stream language: vertex
//!   arrivals (with adjacency) and removals, edge insertions and
//!   deletions, weight drift ([`delta`]);
//! * [`LdgPlacer`] — multi-dimensional linear-deterministic-greedy
//!   placement of arriving vertices under per-dimension `(1+ε)` capacity
//!   slabs ([`placement`]);
//! * [`StreamingPartitioner`] — the engine: the staged ingest pipeline
//!   (see *Batch lifecycle* below), drift telemetry, and **incremental
//!   refinement** — greedy multi-constraint rebalancing plus warm-started
//!   pairwise GD (`mdbgp_core::bipartition_warm` /
//!   `GdPartitioner::refine_pair`) with unchanged vertices frozen, so a
//!   batch of updates is absorbed by a few cheap iterations ([`engine`],
//!   [`pipeline`]);
//! * [`PartitionStore`] — the engine's write side: per-part
//!   multi-dimensional loads, live imbalance / locality telemetry, and the
//!   per-`(part, dimension)` **rebalance heaps** that give the greedy
//!   rebalance its O(log n)-per-move candidate queue ([`store`]);
//! * [`ReadView`] / [`ReadHandle`] — the serving layer: an immutable,
//!   epoch-stamped view of the assignment published atomically at every
//!   batch boundary, pinned by reader threads with one atomic probe and
//!   served lock-free, concurrently with ingest ([`store`] and the *Read
//!   path* notes below).
//!
//! ## Deletions
//!
//! Real churn workloads shrink as well as grow (the dynamic setting
//! surveyed in Buluç et al., *Recent Advances in Graph Partitioning*),
//! and the subsystem serves them first-class:
//!
//! * **Tombstoning, not rewriting.** [`StreamUpdate::RemoveEdge`] /
//!   [`StreamUpdate::RemoveVertex`] tombstone in O(deg): delta edges are
//!   dropped in place, base-CSR edges land in a per-vertex tombstone list,
//!   and a removed vertex — after shedding its edges — reads as isolated
//!   while keeping its id. See the [`dynamic`] module docs for the full
//!   lifecycle.
//! * **Capacity releases immediately.** [`PartitionStore::release_vertex`]
//!   subtracts the vertex from its part's loads *and* from the store's
//!   live per-dimension totals, so imbalance/headroom telemetry, the
//!   LDG placement slabs and the refinement trigger all see the departure
//!   at once — `shard_of` answers [`TOMBSTONE`] for the released id. The
//!   drift trigger therefore works in **both directions**: load leaving an
//!   overloaded part relaxes the pressure, while draining one part shrinks
//!   the average and surfaces every other part's relative overload.
//! * **Purges remap ids.** When churn outgrows
//!   [`StreamConfig::compact_slack`] (or a refinement pass starts), the
//!   compaction drops tombstoned edges and vertices and renumbers the
//!   survivors; the old→new map is surfaced in [`BatchReport::remap`]
//!   ([`TOMBSTONE`] marks dropped ids) and anything holding vertex ids
//!   must rewrite them. Between purges ids are stable.
//!
//! Duplicate-proof edge accounting rides along: stats only move when the
//! graph reports an actual insertion/removal, so re-reported edges and
//! remove/re-add cycles cannot drift the locality counters.
//!
//! ## Batch lifecycle
//!
//! [`StreamingPartitioner::ingest`] runs every batch through six named
//! stages, each timed by an RAII span (the tree lands in
//! [`BatchReport::spans`]; [`BatchReport::timings`] is the flat per-stage
//! view over it):
//!
//! 1. **validate** — the whole batch is checked up front, including a
//!    simulation of the vertex ids the batch itself will create or recycle,
//!    so ingestion is all-or-nothing: an `Err` leaves the engine untouched.
//! 2. **split** — updates apply to the [`DynamicGraph`] in order (edges,
//!    removals, weight drift; arrivals get their ids and adjacency), but
//!    arrivals are *not* placed yet. Arrival ids come off the free list of
//!    tombstoned slots first (LIFO) — under churn the id space stays
//!    bounded between purges, and callers read the assigned ids from
//!    [`BatchReport::arrival_ids`] instead of predicting them.
//! 3. **speculative placement** — arrivals are placed in fixed-size chunks,
//!    concurrently on [`StreamConfig::threads`] workers, against a *frozen*
//!    snapshot of the per-(part, dimension) loads; each chunk reserves
//!    capacity locally and sees the affinity of its own earlier arrivals.
//!    Chunk boundaries never depend on the thread count, so the decisions
//!    don't either.
//! 4. **conflict repair** — chunk reservations merge; any (part, dimension)
//!    slot the chunks oversubscribed is repaired by evicting the losers in
//!    **stable arrival order** (earliest arrivals keep their slots) and
//!    re-placing them sequentially with full knowledge. `threads = 1` and
//!    `threads = N` therefore produce byte-identical partitions *by
//!    construction*. Evictions and passes are surfaced as
//!    [`BatchReport::placement_conflicts`] / [`BatchReport::repair_passes`]
//!    and in [`StreamTelemetry`].
//! 5. **commit** — assignments land in the [`PartitionStore`] and the edge
//!    accounting deferred by the split stage settles against the final
//!    parts.
//! 6. **refine** — compaction when churn outgrew the slack, the drift
//!    check, and (when triggered) rebalance + warm-started pairwise GD.
//!
//! The speculative stage trades a little placement information for
//! parallelism — an arrival cannot see the in-flight decisions of *other*
//! chunks — which is the standard speculate-and-repair design for
//! streaming greedy placement; the ε-guarantee is unaffected (capacity is
//! enforced by repair, and overflow falls back exactly like serial LDG,
//! where the refinement stage restores feasibility).
//!
//! ## Warm restart
//!
//! A serving replica must not replay the whole stream after a restart.
//! [`StreamingPartitioner::save_snapshot`] serializes the engine's full
//! state to any `io::Write` in a versioned, self-describing, checksummed
//! binary format, and [`StreamingPartitioner::restore`] rebuilds an
//! engine that continues ingesting with **byte-identical**
//! [`BatchReport`]s to the process that saved (property-tested across
//! mixed churn batches and thread counts). The format and its guarantees
//! live in [`snapshot`]; the short version:
//!
//! | piece | serialized verbatim | rebuilt on load |
//! |---|---|---|
//! | [`DynamicGraph`] | base CSR, delta, edge/vertex tombstones, **free list**, weight rows + live totals | — |
//! | [`PartitionStore`] | assignments, per-(part, dim) loads, live totals, edge counters | rebalance heaps, stamps, part sizes |
//! | engine | [`StreamConfig`], dirty set, telemetry, refinement seed/schedule | — |
//!
//! Floats are serialized bit-exactly (the live accounting is maintained
//! incrementally; re-deriving it would diverge from the saver), and
//! `save_snapshot` canonicalizes the live heaps so saver and restorer
//! share one candidate-queue state. The header records an **id epoch** —
//! the number of purging compactions the id space has gone through — so a
//! restorer holding old ids can refuse a snapshot from a different epoch
//! ([`StreamingPartitioner::restore_expecting`], [`SnapshotExpectation`]);
//! truncated, corrupted, version-skewed or shape-mismatched snapshots each
//! fail with a named [`SnapshotError`] variant and construct nothing.
//! Snapshots may be taken mid-churn: tombstoned-but-unpurged vertices,
//! their capacity releases and the pending free list are carried verbatim,
//! so id recycling after restore matches the uninterrupted run exactly.
//!
//! ## Replication
//!
//! Warm restart plus deterministic ingestion compose into a replicated
//! serving tier: a [`Leader`] ships a snapshot and appends one framed,
//! checksummed record per batch to a rotating log ([`wire`]), and any
//! number of [`Follower`]s bootstrap from the snapshot and replay the
//! tail through their *own* ingest pipelines, publishing one
//! [`ReadView`] per applied batch. Each record carries the leader's
//! post-batch `(id_epoch, batch_seq)` stamp and view checksum, and the
//! follower compares its own published view against both after every
//! record — a replica cannot drift silently for even one batch
//! ([`replica`] walks the protocol; the `stream_replicate` bench and CI
//! leg hold a leader + 2 followers bitwise identical across purges).
//!
//! ## Threading model
//!
//! [`StreamConfig::threads`] sizes one logical worker pool; `threads = 1`
//! (the default) is fully serial. Parallelism is **scoped and
//! deterministic** — every parallel section spawns `std::thread::scope`
//! workers over disjoint data (no shared mutable state, no locks on the
//! serving path) via [`mdbgp_core::parallel`], and every reduction is
//! order-preserving, so the partition produced is bitwise identical for
//! any thread count (property-tested in `proptest_refine_parallel`).
//! Three sections engage the pool:
//!
//! 1. **GD mat-vec** — bootstrap gradient iterations split CSR rows into
//!    equal-edge-count chunks ([`mdbgp_core::matvec::matvec_parallel`]);
//! 2. **pairwise refinement rounds** — the ranked part pairs are scheduled
//!    into rounds of part-disjoint pairs
//!    (`GdPartitioner::plan_disjoint_rounds`, a maximal matching per
//!    round), each round's `refine_pair` calls run concurrently against
//!    one immutable partition snapshot, and the accepted moves are applied
//!    at the round barrier;
//! 3. **speculative placement** — fixed-size chunks of a batch's arrivals
//!    are placed concurrently against a frozen load snapshot with
//!    chunk-local capacity reservations (see *Batch lifecycle*); within a
//!    single-chunk batch the per-part scoring sweep folds over disjoint
//!    part ranges instead (only engaged for large `k`, where it amortizes
//!    the spawn).
//!
//! The serving path is structurally outside the pool: reader threads hold
//! [`ReadHandle`]s onto immutable published [`ReadView`]s and answer
//! lookups lock-free **while** any of the sections above run — the only
//! synchronization is one atomic sequence probe per lookup loop (and a
//! short re-pin lock once per publish). See *Read path & epoch
//! publication* in `docs/ARCHITECTURE.md`.
//!
//! ## Observability
//!
//! Every engine owns an [`mdbgp_obs::MetricsRegistry`]
//! ([`StreamingPartitioner::metrics`]) that the whole stack records into:
//!
//! * **Naming scheme** — metric names are dotted
//!   `subsystem.stage.metric` paths: `stream.ingest.batches`,
//!   `stream.place.conflicts`, `core.gd.refine_iterations`,
//!   `stream.store.lookups`. The complete set the engine can emit is the
//!   [`engine::METRIC_ALLOWLIST`] — CI schema-validates metric dumps
//!   against it, so a typo'd name fails the build instead of silently
//!   forking a new time series. Latency histograms derived from spans are
//!   auto-named `span.<dotted.path>_us` (e.g. `span.ingest.place_us`).
//! * **Histograms** use fixed log2 buckets — bucket 0 holds the value 0,
//!   bucket *i* the range `[2^(i-1), 2^i − 1]` — with p50/p90/p99
//!   summaries clamped to the exact observed max, so quantiles are
//!   monotone by construction (see the [`mdbgp_obs`] crate docs).
//! * **Spans** — ingest opens a `"ingest"` root span with one child per
//!   pipeline stage; the refinement pass nests `compact`, `rebalance`,
//!   `gd` and `recount` under `"refine"`. Per-batch trees roll up into
//!   cumulative per-path totals and latency histograms on absorption.
//! * **Journal** — structured events (`compact.purge`, `refine.pass`,
//!   `refine.drift_trigger`, `place.repair`, `rebalance.full_scan`,
//!   `snapshot.save` / `snapshot.restore`) in a bounded ring of
//!   [`mdbgp_obs::JOURNAL_CAPACITY`] entries with monotonic sequence
//!   numbers; once full the oldest events drop and the dump reports how
//!   many.
//! * **Determinism** — metrics whose names do *not* end in
//!   `_us`/`_ms`/`_secs` are data-valued and identical for `threads = 1`
//!   vs `threads = N` on the same stream
//!   ([`mdbgp_obs::MetricsRegistry::deterministic_json`] renders exactly
//!   that subset; property-tested in `proptest_metrics`).
//! * **Cost** — recording is a few map updates per batch (never per
//!   vertex on a hot loop; the store's lookup counter rides the serving
//!   wrapper only), and a disabled registry
//!   ([`StreamingPartitioner::set_metrics_enabled`]) early-returns from
//!   every call. The registry is **not** serialized into snapshots:
//!   counters restart on restore and the restored engine journals a
//!   `snapshot.restore` event, so dumps are self-describing about the
//!   reset.
//!
//! The serving read path reports through the same registry: reader
//! handles tick shared atomic counters (`stream.store.lookups`,
//! `stream.store.stale_epoch_reads`) and a lock-free latency histogram
//! (`stream.store.lookup_us`) that the engine mirrors into the registry
//! at sync points; `stream.store.view_swaps` counts view publications.
//! The `stream_serve` bench gates `lookup_p99_us` against a committed
//! baseline in CI (see `docs/BENCHMARKS.md`).
//!
//! ## Further reading
//!
//! `docs/ARCHITECTURE.md` at the workspace root walks the whole stack —
//! the crate map, this engine's six-stage batch lifecycle, the
//! warm-start + delta-gradient GD design behind the refine stage, and
//! the snapshot/id-epoch rules — and `docs/BENCHMARKS.md` specifies the
//! perf-record format and the CI gates that hold the refine hot path to
//! its committed baselines.
//!
//! ## Quickstart
//!
//! ```
//! use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
//! use mdbgp_graph::gen::{community_graph, CommunityGraphConfig};
//! use mdbgp_graph::VertexWeights;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Bootstrap on the current graph...
//! let cg = community_graph(
//!     &CommunityGraphConfig::social(1000),
//!     &mut StdRng::seed_from_u64(1),
//! );
//! let weights = VertexWeights::vertex_edge(&cg.graph);
//! let mut sp = StreamingPartitioner::bootstrap(
//!     cg.graph,
//!     weights,
//!     StreamConfig::new(4, 0.05),
//! )
//! .unwrap();
//!
//! // ...then absorb updates online — including churn.
//! let mut batch = UpdateBatch::new();
//! batch.add_vertex(vec![1.0, 2.0], vec![3, 17]); // arrives with 2 edges
//! batch.add_edge(5, 900);
//! batch.remove_edge(3, 17); // unfriended (no-op if never friends)
//! batch.remove_vertex(42); // account deleted
//! let report = sp.ingest(&batch).unwrap();
//! assert!(report.max_imbalance <= 0.05 + 1e-9);
//! // Arrival ids are reported, not predicted: under churn the engine
//! // recycles purged slots, and a purge may renumber ids mid-ingest —
//! // `arrival_ids` is already expressed in the final id space.
//! let arrival = report.arrival_ids[0];
//! assert!(sp.shard_of(arrival) < 4); // O(1) lookup for the new vertex
//! // Anything holding older vertex ids rewrites them through the remap a
//! // purging compaction reports (ids are stable when `remap` is None).
//! match &report.remap {
//!     None => assert_eq!(sp.shard_of(42), mdbgp_stream::TOMBSTONE),
//!     Some(m) => assert_eq!(m[42], mdbgp_stream::TOMBSTONE), // purged
//! }
//! ```

pub mod delta;
pub mod dynamic;
pub mod engine;
pub mod pipeline;
pub mod placement;
pub mod replica;
pub mod snapshot;
pub mod store;
pub mod wire;

/// Sentinel id for a vertex that no longer exists: the shard reported by
/// [`PartitionStore::shard_of`] for a released vertex, and the slot value
/// in the old→new id map returned by [`DynamicGraph::compact`] for a
/// vertex that was dropped. Never a valid part or vertex id.
pub const TOMBSTONE: u32 = u32::MAX;

pub use delta::{StreamUpdate, UpdateBatch};
pub use dynamic::DynamicGraph;
pub use engine::{
    BatchReport, StreamConfig, StreamTelemetry, StreamingPartitioner, METRIC_ALLOWLIST,
};
pub use mdbgp_obs::{
    validate_dump, DumpStats, HistogramSummary, JournalEvent, MetricsRegistry, SpanNode,
};
pub use pipeline::{StageTimings, SPECULATIVE_CHUNK};
pub use placement::{LdgPlacer, LoadView, ReservationLedger, ReservedView};
pub use replica::{Follower, Leader, ReplicaError};
pub use snapshot::{SnapshotError, SnapshotExpectation, SnapshotInfo};
pub use store::{LoadSnapshot, PartitionStore, ReadHandle, ReadView, ViewEpoch};
pub use wire::{LogHeader, LogRecord, WireError};
