//! [`DynamicGraph`]: a CSR graph plus an in-memory delta, with tombstoned
//! removal and periodic compaction.
//!
//! `mdbgp-graph`'s [`Graph`] is immutable CSR — ideal for the GD mat-vec,
//! hostile to mutation. The streaming layer therefore keeps a **base** CSR
//! plus per-vertex sorted **delta** adjacency lists, and a **tombstone
//! set** over both for removals. Reads see `(base ∖ tombstones) ∪ delta`;
//! writes go to the delta (or clear a tombstone); [`DynamicGraph::compact`]
//! merges everything into a fresh CSR once the churn exceeds a configurable
//! fraction of the base. Refinement always runs on the compacted CSR, so
//! the GD kernels never pay for the indirection.
//!
//! ## Tombstone lifecycle and the id-remap contract
//!
//! Removal is two-phase, so the serving path never sees an id shift
//! mid-stream:
//!
//! 1. **Tombstoning** ([`DynamicGraph::remove_edge`] /
//!    [`DynamicGraph::remove_vertex`]) is O(deg): a removed *delta* edge is
//!    dropped in place, a removed *base* edge is recorded in a per-vertex
//!    tombstone list (the base CSR is immutable), and a removed vertex —
//!    after shedding its incident edges the same way — is marked dead.
//!    Vertex ids are **stable** through this phase: every accessor
//!    ([`DynamicGraph::degree`], [`DynamicGraph::neighbors`],
//!    [`DynamicGraph::has_edge`], [`DynamicGraph::snapshot`]) filters
//!    through the tombstones, a dead vertex
//!    reads as isolated, and [`DynamicGraph::add_edge`] of a tombstoned base edge
//!    clears the tombstone instead of duplicating the edge in the delta.
//!    Between the two phases, [`DynamicGraph::add_vertex`] **recycles** tombstoned
//!    ids (most recently freed first) before growing the id space, so a
//!    high-churn stream does not inflate the arrival-id space unboundedly
//!    between purges. A recycled id names the *new* vertex from that point
//!    on — callers must drop references to an id once they removed it.
//! 2. **Purging** ([`DynamicGraph::compact`]): the merge drops tombstoned edges
//!    and dead vertices and renumbers the survivors `0..live` in ascending
//!    old-id order. When any vertex was dropped, `compact` returns the
//!    **old→new map** (`map[old] = new`, [`crate::TOMBSTONE`] for dropped
//!    ids); callers own every structure indexed by vertex id and must
//!    remap it before touching the graph again —
//!    [`crate::StreamingPartitioner`] does this for its store/dirty state
//!    and surfaces the map in [`crate::engine::BatchReport::remap`] so
//!    routers can rewrite their own references. Edge-only compactions
//!    return `None` and ids stay put.
//!
//! The weights follow the same contract: a dead vertex keeps its (positive)
//! weight rows until the purge drops them — live-load accounting between
//! the two phases lives in [`crate::PartitionStore`], which releases the
//! vertex's weight at tombstoning time.

use crate::TOMBSTONE;
use mdbgp_core::parallel::{
    even_boundaries, fixed_boundaries, for_each_chunk_mut, prefix_boundaries,
};
use mdbgp_graph::{Graph, VertexId, VertexWeights};
use std::collections::HashMap;

/// Touched vertices per deferred-flush work range — fixed so the range
/// count reported by [`DynamicGraph::flush_deferred`] depends only on the
/// batch contents, never on the thread count (the determinism diff in CI
/// compares it byte-for-byte across thread counts).
const DEFERRED_FLUSH_CHUNK: usize = 256;

/// Buffered adjacency mutations for one vertex while a deferred batch is
/// open — net lists against the *committed* state, each sorted ascending:
/// `add`/`del` splice the delta adjacency (`add` disjoint from it, `del` a
/// subset), `tomb`/`untomb` splice the edge-tombstone list likewise.
/// Opposite operations on the same neighbour cancel instead of stacking,
/// so replaying `(delta ∖ del) ∪ add` / `(removed ∖ untomb) ∪ tomb` at
/// flush time reproduces exactly the state direct mutation would have
/// built.
#[derive(Clone, Debug, Default)]
struct PendingAdj {
    add: Vec<VertexId>,
    del: Vec<VertexId>,
    tomb: Vec<VertexId>,
    untomb: Vec<VertexId>,
}

/// One overlay entry's net `(additions, removals)` pair for a single
/// committed list — which pair depends on whether the flush is replaying
/// the delta adjacency or the edge tombstones.
type NetLists<'a> = (&'a [VertexId], &'a [VertexId]);

/// Merges `(list ∖ del) ∪ add` in one sorted pass. `del` must be a subset
/// of `list` and `add` disjoint from it — the cancellation discipline in
/// the deferred mutation paths guarantees both.
fn apply_net(list: &mut Vec<VertexId>, add: &[VertexId], del: &[VertexId]) {
    if add.is_empty() && del.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(list.len() + add.len() - del.len());
    let (mut ai, mut di) = (0, 0);
    for &x in list.iter() {
        while ai < add.len() && add[ai] < x {
            out.push(add[ai]);
            ai += 1;
        }
        if di < del.len() && del[di] == x {
            di += 1;
            continue;
        }
        out.push(x);
    }
    out.extend_from_slice(&add[ai..]);
    debug_assert_eq!(di, del.len(), "pending removals must exist in the list");
    *list = out;
}

/// A growing-and-shrinking graph: base CSR + delta adjacency + tombstones
/// + multi-dimensional weights.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    base: Graph,
    /// Per-vertex delta adjacency, sorted ascending; indexes `0..n` where
    /// `n >= base.num_vertices()` (vertices past the base have all their
    /// adjacency here).
    delta: Vec<Vec<VertexId>>,
    /// Undirected delta edge count.
    delta_edges: usize,
    /// Per-vertex sorted tombstone lists over the *base* adjacency
    /// (symmetric, like the delta). Delta removals mutate the delta
    /// directly and never land here.
    removed: Vec<Vec<VertexId>>,
    /// Undirected tombstoned base edge count.
    removed_base_edges: usize,
    /// Vertex tombstones; a dead vertex has no live incident edges.
    dead: Vec<bool>,
    dead_count: usize,
    /// Ids of currently dead vertices, most recently tombstoned last —
    /// [`Self::add_vertex`] recycles them LIFO so a high-churn stream does
    /// not grow the id space unboundedly between purges. Invariant:
    /// `free` contains exactly the ids with `dead[v] == true`.
    free: Vec<VertexId>,
    weights: VertexWeights,
    /// Worker count for the parallel compaction merge and deferred-batch
    /// flush. Not serialized: a restored graph starts at 1 and the engine
    /// re-applies its configured count. Never influences results — every
    /// parallel pass here is pure integer data movement into disjoint
    /// output ranges.
    threads: usize,
    /// Deferred-batch overlay (see [`Self::begin_deferred`]); empty
    /// outside a deferred batch.
    pending: HashMap<VertexId, PendingAdj>,
    /// Whether a deferred batch is open.
    deferred: bool,
    /// Flush ranges applied since [`Self::begin_deferred`], including
    /// mid-batch flushes forced by [`Self::remove_vertex`].
    deferred_ranges: usize,
}

impl DynamicGraph {
    /// Wraps an existing graph and its weights.
    ///
    /// # Panics
    /// Panics if `weights` does not cover the graph.
    pub fn new(base: Graph, weights: VertexWeights) -> Self {
        assert_eq!(
            weights.num_vertices(),
            base.num_vertices(),
            "weights must cover the base graph"
        );
        let n = base.num_vertices();
        Self {
            base,
            delta: vec![Vec::new(); n],
            delta_edges: 0,
            removed: vec![Vec::new(); n],
            removed_base_edges: 0,
            dead: vec![false; n],
            dead_count: 0,
            free: Vec::new(),
            weights,
            threads: 1,
            pending: HashMap::new(),
            deferred: false,
            deferred_ranges: 0,
        }
    }

    /// Sets the worker count for the parallel compaction merge and
    /// deferred-batch flush. Results are identical for every count — only
    /// wall-clock changes.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// An empty dynamic graph with `dims` weight dimensions (pure streaming
    /// from nothing).
    pub fn empty(dims: usize) -> Self {
        assert!(dims > 0);
        Self {
            base: Graph::empty(0),
            delta: Vec::new(),
            delta_edges: 0,
            removed: Vec::new(),
            removed_base_edges: 0,
            dead: Vec::new(),
            dead_count: 0,
            free: Vec::new(),
            weights: VertexWeights::from_vectors(vec![Vec::new(); dims]),
            threads: 1,
            pending: HashMap::new(),
            deferred: false,
            deferred_ranges: 0,
        }
    }

    /// Size of the vertex-id space (live + tombstoned). Ids `0..n` are
    /// addressable; use [`Self::is_live`] to tell the two apart and
    /// [`Self::num_live_vertices`] for the live count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.delta.len()
    }

    /// Number of live (non-tombstoned) vertices.
    #[inline]
    pub fn num_live_vertices(&self) -> usize {
        self.delta.len() - self.dead_count
    }

    /// Number of vertices tombstoned since the last purge.
    #[inline]
    pub fn num_tombstoned(&self) -> usize {
        self.dead_count
    }

    /// Whether `v` is an existing, non-tombstoned vertex.
    #[inline]
    pub fn is_live(&self, v: VertexId) -> bool {
        (v as usize) < self.dead.len() && !self.dead[v as usize]
    }

    /// Number of live undirected edges (base − tombstoned + delta).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() - self.removed_base_edges + self.delta_edges
    }

    /// Edges still sitting in the delta.
    #[inline]
    pub fn delta_edge_count(&self) -> usize {
        self.delta_edges
    }

    /// Base edges tombstoned since the last compaction.
    #[inline]
    pub fn tombstoned_edge_count(&self) -> usize {
        self.removed_base_edges
    }

    /// Live degree of `v` (0 for a tombstoned vertex). Sees through the
    /// deferred-batch overlay.
    pub fn degree(&self, v: VertexId) -> usize {
        let mut removed_len = self.removed[v as usize].len();
        let mut delta_len = self.delta[v as usize].len();
        if let Some(p) = self.pending.get(&v) {
            removed_len = removed_len + p.tomb.len() - p.untomb.len();
            delta_len = delta_len + p.add.len() - p.del.len();
        }
        let base_deg = if (v as usize) < self.base.num_vertices() {
            self.base.degree(v) - removed_len
        } else {
            0
        };
        base_deg + delta_len
    }

    /// Live neighbours of `v`: base slice filtered through the edge
    /// tombstones, chained with the delta (each sorted; the union is *not*
    /// globally sorted, but is duplicate-free). Empty for a tombstoned
    /// vertex — removal sheds its incident edges.
    ///
    /// Not overlay-aware: must not be called while a deferred batch holds
    /// buffered mutations ([`Self::remove_vertex`], the one mid-batch
    /// caller, flushes first).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        debug_assert!(
            self.pending.is_empty(),
            "neighbors() while deferred mutations are pending: flush first"
        );
        let base: &[VertexId] = if (v as usize) < self.base.num_vertices() {
            self.base.neighbors(v)
        } else {
            &[]
        };
        let gone: &[VertexId] = &self.removed[v as usize];
        base.iter()
            .copied()
            .filter(move |u| gone.binary_search(u).is_err())
            .chain(self.delta[v as usize].iter().copied())
    }

    /// Whether edge `{u, v}` is live (present and not tombstoned). Sees
    /// through the deferred-batch overlay.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if (u as usize) < self.base.num_vertices()
            && (v as usize) < self.base.num_vertices()
            && self.base.has_edge(u, v)
        {
            return !self.edge_tombstoned(u, v);
        }
        self.delta_has(u, v)
    }

    /// Whether `v` sits in `u`'s *effective* delta adjacency (committed
    /// delta spliced with the pending overlay).
    fn delta_has(&self, u: VertexId, v: VertexId) -> bool {
        if let Some(p) = self.pending.get(&u) {
            if p.add.binary_search(&v).is_ok() {
                return true;
            }
            if p.del.binary_search(&v).is_ok() {
                return false;
            }
        }
        self.delta[u as usize].binary_search(&v).is_ok()
    }

    /// Whether base edge `{u, v}` is *effectively* tombstoned (committed
    /// tombstones spliced with the pending overlay).
    fn edge_tombstoned(&self, u: VertexId, v: VertexId) -> bool {
        if let Some(p) = self.pending.get(&u) {
            if p.tomb.binary_search(&v).is_ok() {
                return true;
            }
            if p.untomb.binary_search(&v).is_ok() {
                return false;
            }
        }
        self.removed[u as usize].binary_search(&v).is_ok()
    }

    /// The multi-dimensional vertex weights. Rows of tombstoned vertices
    /// stay in place (and positive) until the next purging compaction.
    #[inline]
    pub fn weights(&self) -> &VertexWeights {
        &self.weights
    }

    /// Adds a vertex with the given per-dimension weights; returns its id.
    /// When tombstoned slots exist their ids are **recycled** (most
    /// recently tombstoned first) instead of growing the id space, so a
    /// high-churn stream's arrival-id space stays bounded between purges;
    /// otherwise the id is the current id-space size. A recycled slot is
    /// indistinguishable from a fresh one: its delta adjacency is empty
    /// (removal shed every live edge), its base row stays fully tombstoned,
    /// and its weight row is overwritten. Callers that released the old
    /// occupant's id must have dropped their references when they removed
    /// it — the id now names the new vertex.
    pub fn add_vertex(&mut self, weight_row: &[f64]) -> VertexId {
        debug_assert_eq!(weight_row.len(), self.weights.dims());
        if let Some(v) = self.free.pop() {
            debug_assert!(self.dead[v as usize], "free list out of sync");
            debug_assert!(self.delta[v as usize].is_empty());
            self.dead[v as usize] = false;
            self.dead_count -= 1;
            for (j, &w) in weight_row.iter().enumerate() {
                self.weights.set_weight(j, v, w);
            }
            return v;
        }
        self.weights.push_vertex(weight_row);
        self.delta.push(Vec::new());
        self.removed.push(Vec::new());
        self.dead.push(false);
        (self.delta.len() - 1) as VertexId
    }

    /// Ids currently awaiting recycling (dead, not yet purged), in the
    /// order [`Self::add_vertex`] will consume them **from the back**.
    /// Exposed so batch validation can simulate the id assignment of a
    /// batch without applying it.
    #[inline]
    pub fn free_ids(&self) -> &[VertexId] {
        &self.free
    }

    /// Adds undirected edge `{u, v}`. Re-adding a tombstoned base edge
    /// clears the tombstone instead of duplicating the edge in the delta.
    /// Returns `false` (and does nothing) for self-loops and duplicates.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or tombstoned.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.num_vertices();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        assert!(
            self.is_live(u) && self.is_live(v),
            "edge ({u}, {v}) touches a tombstoned vertex"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        // A tombstoned base edge is resurrected in place; inserting it into
        // the delta instead would double-count the edge in every read until
        // the next compaction deduplicated it.
        if self.edge_tombstoned(u, v) {
            self.removed_base_edges -= 1;
            if self.deferred {
                self.pend_untomb(u, v);
                self.pend_untomb(v, u);
            } else {
                // Invariant, not input: `edge_tombstoned(u, v)` above just
                // found the committed entry (deferred mode was handled in
                // the other branch), and tombstones are only ever inserted
                // symmetrically — so both searches must hit.
                let pos = self.removed[u as usize]
                    .binary_search(&v)
                    .expect("effective tombstone without a committed entry");
                self.removed[u as usize].remove(pos);
                let pos = self.removed[v as usize]
                    .binary_search(&u)
                    .expect("edge tombstones must be symmetric");
                self.removed[v as usize].remove(pos);
            }
            return true;
        }
        self.delta_edges += 1;
        if self.deferred {
            self.pend_add(u, v);
            self.pend_add(v, u);
        } else {
            let du = &mut self.delta[u as usize];
            let pos = du.binary_search(&v).unwrap_err();
            du.insert(pos, v);
            let dv = &mut self.delta[v as usize];
            let pos = dv.binary_search(&u).unwrap_err();
            dv.insert(pos, u);
        }
        true
    }

    /// Buffers "clear the tombstone on base edge `{u, v}`" on `u`'s side:
    /// a tombstone pended this batch cancels, a committed one gets an
    /// `untomb` entry.
    fn pend_untomb(&mut self, u: VertexId, v: VertexId) {
        let p = self.pending.entry(u).or_default();
        if let Ok(i) = p.tomb.binary_search(&v) {
            p.tomb.remove(i);
        } else {
            let i = p.untomb.binary_search(&v).unwrap_err();
            p.untomb.insert(i, v);
        }
    }

    /// Buffers "tombstone base edge `{u, v}`" on `u`'s side: a clear
    /// pended this batch cancels, otherwise a `tomb` entry lands.
    fn pend_tomb(&mut self, u: VertexId, v: VertexId) {
        let p = self.pending.entry(u).or_default();
        if let Ok(i) = p.untomb.binary_search(&v) {
            p.untomb.remove(i);
        } else {
            let i = p.tomb.binary_search(&v).unwrap_err();
            p.tomb.insert(i, v);
        }
    }

    /// Buffers "insert delta edge `{u, v}`" on `u`'s side: a delta delete
    /// pended this batch cancels, otherwise an `add` entry lands.
    fn pend_add(&mut self, u: VertexId, v: VertexId) {
        let p = self.pending.entry(u).or_default();
        if let Ok(i) = p.del.binary_search(&v) {
            p.del.remove(i);
        } else {
            let i = p.add.binary_search(&v).unwrap_err();
            p.add.insert(i, v);
        }
    }

    /// Buffers "remove delta edge `{u, v}`" on `u`'s side: an insert
    /// pended this batch cancels, otherwise a `del` entry lands.
    fn pend_del(&mut self, u: VertexId, v: VertexId) {
        let p = self.pending.entry(u).or_default();
        if let Ok(i) = p.add.binary_search(&v) {
            p.add.remove(i);
        } else {
            let i = p.del.binary_search(&v).unwrap_err();
            p.del.insert(i, v);
        }
    }

    /// Removes undirected edge `{u, v}`: a delta edge is dropped in place,
    /// a base edge is tombstoned. Returns `false` (and does nothing) when
    /// the edge does not exist (or `u == v`).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or tombstoned.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.num_vertices();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        assert!(
            self.is_live(u) && self.is_live(v),
            "edge ({u}, {v}) touches a tombstoned vertex"
        );
        if u == v {
            return false;
        }
        if self.delta_has(u, v) {
            self.delta_edges -= 1;
            if self.deferred {
                self.pend_del(u, v);
                self.pend_del(v, u);
            } else {
                // Invariant, not input: the caller just observed the edge
                // live in the delta layer, and delta adjacency is only
                // ever inserted symmetrically — both searches must hit.
                let pos = self.delta[u as usize]
                    .binary_search(&v)
                    .expect("effective delta edge without a committed entry");
                self.delta[u as usize].remove(pos);
                let pos = self.delta[v as usize]
                    .binary_search(&u)
                    .expect("delta adjacency must be symmetric");
                self.delta[v as usize].remove(pos);
            }
            return true;
        }
        let in_base = (u as usize) < self.base.num_vertices()
            && (v as usize) < self.base.num_vertices()
            && self.base.has_edge(u, v);
        if in_base {
            if self.edge_tombstoned(u, v) {
                return false; // already tombstoned
            }
            self.removed_base_edges += 1;
            if self.deferred {
                self.pend_tomb(u, v);
                self.pend_tomb(v, u);
            } else {
                let pos = self.removed[u as usize].binary_search(&v).unwrap_err();
                self.removed[u as usize].insert(pos, v);
                let pos = self.removed[v as usize].binary_search(&u).unwrap_err();
                self.removed[v as usize].insert(pos, u);
            }
            true
        } else {
            false
        }
    }

    /// Tombstones vertex `v`: removes every live incident edge, then marks
    /// the vertex dead. Its id stays addressable (reading as an isolated
    /// vertex) until the next purging [`Self::compact`] drops it. Returns
    /// the neighbours it was disconnected from, so callers can settle
    /// per-edge accounting.
    ///
    /// # Panics
    /// Panics if `v` is out of range or already tombstoned.
    pub fn remove_vertex(&mut self, v: VertexId) -> Vec<VertexId> {
        assert!(
            (v as usize) < self.num_vertices(),
            "vertex {v} out of range"
        );
        assert!(self.is_live(v), "vertex {v} is already tombstoned");
        // Mid-batch vertex removal folds the overlay in first (the
        // neighbour walk is not overlay-aware) and sheds its edges
        // directly, so the dead slot's committed adjacency is canonically
        // empty — the invariant `add_vertex` recycling relies on.
        let was_deferred = self.deferred;
        if was_deferred {
            self.flush_pending();
            self.deferred = false;
        }
        let nbrs: Vec<VertexId> = self.neighbors(v).collect();
        for &u in &nbrs {
            let removed = self.remove_edge(v, u);
            debug_assert!(removed, "neighbour list out of sync with edges");
        }
        self.dead[v as usize] = true;
        self.dead_count += 1;
        self.free.push(v);
        self.deferred = was_deferred;
        nbrs
    }

    /// Opens a deferred batch: subsequent [`Self::add_edge`] /
    /// [`Self::remove_edge`] calls make their decisions immediately
    /// (return values, edge counters and every overlay-aware read are
    /// exact), but the O(deg) sorted-list splices are buffered per vertex
    /// and applied by [`Self::flush_deferred`] in parallel over disjoint
    /// vertex ranges. Determinism is structural: each buffered splice
    /// lands only on its own vertex's lists, so application order across
    /// vertices is irrelevant and the flushed state is bitwise identical
    /// to direct mutation for every thread count.
    ///
    /// # Panics
    /// Panics (debug) if a deferred batch is already open.
    pub fn begin_deferred(&mut self) {
        debug_assert!(
            !self.deferred && self.pending.is_empty(),
            "deferred batch already open"
        );
        self.deferred = true;
        self.deferred_ranges = 0;
    }

    /// Applies every buffered mutation and closes the deferred batch.
    /// Returns the number of touched-vertex work ranges flushed (counting
    /// mid-batch flushes forced by [`Self::remove_vertex`]) — a function
    /// of the batch contents only, never the thread count.
    pub fn flush_deferred(&mut self) -> usize {
        self.flush_pending();
        self.deferred = false;
        std::mem::take(&mut self.deferred_ranges)
    }

    /// Applies the pending overlay to the committed adjacency. Touched
    /// vertices are split into fixed-size work ranges
    /// ([`DEFERRED_FLUSH_CHUNK`], so the range count is thread-count
    /// independent), which are grouped among up to `self.threads` workers;
    /// each worker owns a disjoint contiguous region of the outer
    /// adjacency vectors.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let mut touched: Vec<VertexId> = pending.keys().copied().collect();
        touched.sort_unstable();
        let work = fixed_boundaries(touched.len(), DEFERRED_FLUSH_CHUNK);
        self.deferred_ranges += work.len() - 1;
        // Group the fixed work ranges among the workers, then convert the
        // group boundaries from touched-index space to outer-vector space
        // (touched is sorted, so the groups own disjoint contiguous
        // regions of `delta` / `removed`).
        let groups = even_boundaries(work.len() - 1, self.threads);
        let n = self.delta.len();
        let mut outer = Vec::with_capacity(groups.len());
        outer.push(0usize);
        for &g in &groups[1..groups.len() - 1] {
            outer.push(touched[work[g]] as usize);
        }
        outer.push(n);
        let scatter = |range: std::ops::Range<usize>,
                       chunk: &mut [Vec<VertexId>],
                       net: &dyn for<'a> Fn(&'a PendingAdj) -> NetLists<'a>| {
            let lo = touched.partition_point(|&v| (v as usize) < range.start);
            let hi = touched.partition_point(|&v| (v as usize) < range.end);
            for &v in &touched[lo..hi] {
                let (add, del) = net(&pending[&v]);
                apply_net(&mut chunk[v as usize - range.start], add, del);
            }
        };
        for_each_chunk_mut(&mut self.delta, &outer, |range, chunk| {
            scatter(range, chunk, &|p| (&p.add, &p.del));
        });
        for_each_chunk_mut(&mut self.removed, &outer, |range, chunk| {
            scatter(range, chunk, &|p| (&p.tomb, &p.untomb));
        });
    }

    /// Overwrites weight dimension `dim` of `v`.
    ///
    /// # Panics
    /// Panics if `v` is tombstoned.
    pub fn set_weight(&mut self, v: VertexId, dim: usize, value: f64) {
        assert!(self.is_live(v), "vertex {v} is tombstoned");
        self.weights.set_weight(dim, v, value);
    }

    /// Whether the churn (delta + tombstoned edges as a fraction of base
    /// edges, or tombstoned vertices as a fraction of the id space) has
    /// outgrown `slack`.
    pub fn needs_compaction(&self, slack: f64) -> bool {
        let edge_churn = self.delta_edges + self.removed_base_edges;
        edge_churn as f64 > slack * self.base.num_edges().max(1) as f64
            || self.dead_count as f64 > slack * self.num_vertices().max(1) as f64
    }

    /// Merges the delta into a fresh base CSR, dropping tombstoned edges —
    /// and tombstoned vertices, when any exist. O(n + m) when there is
    /// churn; a no-op otherwise.
    ///
    /// Returns `Some(map)` iff vertices were dropped: `map[old]` is the
    /// new id of old vertex `old`, or [`crate::TOMBSTONE`] if it was
    /// removed (live vertices keep their relative order). The caller must
    /// remap every id-indexed structure it owns before using the graph
    /// again. Edge-only compactions return `None`; ids are unchanged.
    #[must_use = "a returned remap means vertex ids changed; apply it to every id-indexed structure"]
    pub fn compact(&mut self) -> Option<Vec<VertexId>> {
        if self.dead_count == 0 {
            if self.delta_edges == 0
                && self.removed_base_edges == 0
                && self.base.num_vertices() == self.num_vertices()
            {
                return None;
            }
            self.base = self.merged_csr();
            for adj in &mut self.delta {
                adj.clear();
            }
            for gone in &mut self.removed {
                gone.clear();
            }
            self.delta_edges = 0;
            self.removed_base_edges = 0;
            return None;
        }

        // Purge: renumber live vertices 0..live in ascending old-id order.
        let (map, live_ids) = self.purge_map();
        self.base = self.live_csr(&map, &live_ids);
        self.weights = self.restrict_weights(&live_ids);
        let live = live_ids.len();
        self.delta = vec![Vec::new(); live];
        self.removed = vec![Vec::new(); live];
        self.dead = vec![false; live];
        self.delta_edges = 0;
        self.removed_base_edges = 0;
        self.dead_count = 0;
        self.free.clear();
        Some(map)
    }

    /// Compacts if needed and returns the full CSR view — the entry point
    /// for refinement, which runs the GD kernels on plain CSR.
    ///
    /// # Panics
    /// Panics if tombstoned vertices are pending: the compaction would
    /// remap ids and this accessor has no way to hand the map back. Call
    /// [`Self::compact`] and apply the remap instead.
    pub fn compacted_csr(&mut self) -> &Graph {
        assert!(
            self.dead_count == 0,
            "tombstoned vertices pending: call compact() and apply the returned id remap"
        );
        let remap = self.compact();
        debug_assert!(remap.is_none());
        &self.base
    }

    /// The base CSR *without* compacting: misses delta edges (and still
    /// carries tombstoned ones) unless [`Self::compact`] ran since the
    /// last mutation. Use [`Self::compact`] + this unless a prior
    /// compaction is guaranteed.
    #[inline]
    pub fn csr(&self) -> &Graph {
        &self.base
    }

    /// Builds the full live-edge CSR without mutating, preserving the id
    /// space — tombstoned vertices appear isolated (test oracle; prefer
    /// [`Self::compact`] + [`Self::csr`] in production paths, and
    /// [`Self::live_snapshot`] when dead ids must not appear at all).
    pub fn snapshot(&self) -> Graph {
        self.merged_csr()
    }

    /// Builds a CSR + weights over the **live** vertices only, renumbered
    /// exactly as a purging [`Self::compact`] would, without mutating.
    /// Returns `(graph, weights, live_ids)` where `live_ids[new] = old`.
    /// This is the reference input for an offline solve of the current
    /// graph (e.g. the scratch GD leg of `stream_online`).
    pub fn live_snapshot(&self) -> (Graph, VertexWeights, Vec<VertexId>) {
        let (map, live_ids) = self.purge_map();
        let graph = self.live_csr(&map, &live_ids);
        (graph, self.weights.restrict(&live_ids), live_ids)
    }

    /// Weight rows of `live_ids`, gathered in parallel over disjoint
    /// ranges of the output columns. Bitwise identical to
    /// [`VertexWeights::restrict`] for every thread count: the gather is
    /// pure data movement, and [`VertexWeights::from_vectors`] re-sums
    /// each total with the same serial left-to-right reduction `restrict`
    /// uses.
    fn restrict_weights(&self, live_ids: &[VertexId]) -> VertexWeights {
        let dims = self.weights.dims();
        let bounds = even_boundaries(live_ids.len(), self.threads);
        let mut data = Vec::with_capacity(dims);
        for j in 0..dims {
            let col = self.weights.dim(j);
            let mut out = vec![0.0f64; live_ids.len()];
            for_each_chunk_mut(&mut out, &bounds, |range, chunk| {
                for (slot, &v) in chunk.iter_mut().zip(&live_ids[range]) {
                    *slot = col[v as usize];
                }
            });
            data.push(out);
        }
        VertexWeights::from_vectors(data)
    }

    /// The purge renumbering: `(old→new map, live old ids in new order)` —
    /// live vertices keep their relative order.
    fn purge_map(&self) -> (Vec<VertexId>, Vec<VertexId>) {
        let mut map = vec![TOMBSTONE; self.num_vertices()];
        let mut live_ids = Vec::with_capacity(self.num_live_vertices());
        for (old, slot) in map.iter_mut().enumerate() {
            if !self.dead[old] {
                *slot = live_ids.len() as VertexId;
                live_ids.push(old as VertexId);
            }
        }
        (map, live_ids)
    }

    /// Every live edge, renumbered through a [`Self::purge_map`] — the one
    /// assembly loop behind both the purging [`Self::compact`] and the
    /// non-mutating [`Self::live_snapshot`], so the two can never diverge.
    fn live_csr(&self, map: &[VertexId], live_ids: &[VertexId]) -> Graph {
        self.assemble_csr(live_ids, |old_v| {
            debug_assert!(!self.dead[old_v as usize], "live edge to a dead vertex");
            map[old_v as usize]
        })
    }

    /// Base edges (minus tombstones) + delta edges over the full id space —
    /// dead vertices come out isolated.
    fn merged_csr(&self) -> Graph {
        let all: Vec<VertexId> = (0..self.num_vertices() as VertexId).collect();
        self.assemble_csr(&all, |v| v)
    }

    /// Assembles the live CSR over `order` (old ids, in output order,
    /// neighbour ids translated through `map`) **without an edge sort**:
    /// each vertex's surviving-base and delta lists are individually sorted
    /// and mutually disjoint, so a per-vertex two-pointer merge emits the
    /// adjacency already sorted — O(n + m) total where the former
    /// edge-list builder paid O(m log m).
    ///
    /// The merge parallelizes over vertex ranges: a serial O(n) pass over
    /// [`Self::degree`] fixes every output offset up front, then
    /// [`prefix_boundaries`] splits the rows into near-equal *edge-count*
    /// chunks and each scoped worker merges its rows into the disjoint
    /// `targets` region those offsets pin down. Every write lands at an
    /// offset-determined position, so the output is bitwise identical for
    /// every thread count. `map` must be monotone on the live vertices
    /// (purge renumbering is), or the output adjacency would come out
    /// unsorted — debug builds re-validate every invariant via
    /// [`Graph::from_csr`] inside [`Graph::from_csr_unchecked`].
    fn assemble_csr(&self, order: &[VertexId], map: impl Fn(VertexId) -> VertexId + Sync) -> Graph {
        debug_assert!(
            self.pending.is_empty(),
            "CSR assembly while deferred mutations are pending: flush first"
        );
        let mut offsets = Vec::with_capacity(order.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for &u in order {
            total += self.degree(u);
            offsets.push(total);
        }
        let mut targets = vec![0 as VertexId; total];
        let rows = prefix_boundaries(&offsets, self.threads);
        if rows.len() <= 2 {
            self.merge_rows(order, &map, &offsets, 0..order.len(), &mut targets);
        } else {
            let mut chunks: Vec<(std::ops::Range<usize>, &mut [VertexId])> =
                Vec::with_capacity(rows.len() - 1);
            let mut rest: &mut [VertexId] = &mut targets;
            for w in rows.windows(2) {
                let (head, tail) = rest.split_at_mut(offsets[w[1]] - offsets[w[0]]);
                chunks.push((w[0]..w[1], head));
                rest = tail;
            }
            std::thread::scope(|scope| {
                for (range, chunk) in chunks {
                    let (map, offsets) = (&map, &offsets);
                    scope.spawn(move || self.merge_rows(order, map, offsets, range, chunk));
                }
            });
        }
        Graph::from_csr_unchecked(offsets, targets)
    }

    /// The per-vertex three-way merge behind [`Self::assemble_csr`], over
    /// rows `range` of `order`, writing into the `targets` region that
    /// `offsets` assigns to those rows.
    fn merge_rows(
        &self,
        order: &[VertexId],
        map: &(impl Fn(VertexId) -> VertexId + Sync),
        offsets: &[usize],
        range: std::ops::Range<usize>,
        out: &mut [VertexId],
    ) {
        let elem_base = offsets[range.start];
        let mut cursor = 0usize;
        for r in range {
            let u = order[r];
            debug_assert_eq!(cursor, offsets[r] - elem_base);
            let base: &[VertexId] = if (u as usize) < self.base.num_vertices() {
                self.base.neighbors(u)
            } else {
                &[]
            };
            let gone = &self.removed[u as usize];
            let delta = &self.delta[u as usize];
            let (mut bi, mut ri, mut di) = (0, 0, 0);
            loop {
                // Next surviving base neighbour; the tombstone cursor only
                // ever advances because both lists are sorted.
                let bnext = loop {
                    if bi >= base.len() {
                        break None;
                    }
                    let v = base[bi];
                    while ri < gone.len() && gone[ri] < v {
                        ri += 1;
                    }
                    if ri < gone.len() && gone[ri] == v {
                        bi += 1;
                        ri += 1;
                    } else {
                        break Some(v);
                    }
                };
                let next = match (bnext, delta.get(di).copied()) {
                    (None, None) => break,
                    (Some(b), None) => {
                        bi += 1;
                        b
                    }
                    (None, Some(d)) => {
                        di += 1;
                        d
                    }
                    (Some(b), Some(d)) => {
                        if b < d {
                            bi += 1;
                            b
                        } else {
                            di += 1;
                            d
                        }
                    }
                };
                out[cursor] = map(next);
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, out.len());
    }

    /// Serializes the full dynamic state — base CSR, delta adjacency, edge
    /// tombstones, vertex tombstones, the free list **verbatim** (a
    /// restored graph recycles the same ids in the same LIFO order as the
    /// saver would have), and the weight rows with their live totals —
    /// into a snapshot payload.
    pub(crate) fn encode_snapshot(&self, w: &mut crate::snapshot::PayloadWriter) {
        debug_assert!(
            self.pending.is_empty() && !self.deferred,
            "snapshot while a deferred batch is open"
        );
        w.put_vec_usize(self.base.raw_offsets());
        w.put_vec_u32(self.base.raw_targets());
        w.put_usize(self.delta.len());
        for adj in &self.delta {
            w.put_vec_u32(adj);
        }
        w.put_usize(self.delta_edges);
        w.put_usize(self.removed.len());
        for gone in &self.removed {
            w.put_vec_u32(gone);
        }
        w.put_usize(self.removed_base_edges);
        w.put_vec_bool(&self.dead);
        w.put_vec_u32(&self.free);
        let dims = self.weights.dims();
        w.put_usize(dims);
        for j in 0..dims {
            w.put_vec_f64(self.weights.dim(j));
        }
        w.put_vec_f64(&(0..dims).map(|j| self.weights.total(j)).collect::<Vec<_>>());
    }

    /// Rebuilds a graph from [`Self::encode_snapshot`] bytes. The payload
    /// already passed the snapshot checksum, so every rejection here
    /// ([`crate::SnapshotError::Corrupt`]) marks a writer/reader format
    /// divergence rather than bit rot — but each invariant is still
    /// checked, because the alternative is an index panic deep inside the
    /// serving path.
    pub(crate) fn decode_snapshot(
        r: &mut crate::snapshot::PayloadReader,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let corrupt = |why: String| SnapshotError::Corrupt(why);

        let offsets = r.get_vec_usize("graph.base.offsets")?;
        let targets = r.get_vec_u32("graph.base.targets")?;
        // `||` short-circuits: `last()` only runs after `is_empty()` held.
        if offsets.is_empty() || offsets[0] != 0 || *offsets.last().unwrap() != targets.len() {
            return Err(corrupt("base CSR offsets do not frame the targets".into()));
        }
        let base_n = offsets.len() - 1;
        for v in 0..base_n {
            if offsets[v] > offsets[v + 1] {
                return Err(corrupt(format!("base CSR offsets not monotone at {v}")));
            }
            let adj = &targets[offsets[v]..offsets[v + 1]];
            for (i, &t) in adj.iter().enumerate() {
                if (t as usize) >= base_n || t as usize == v || (i > 0 && adj[i - 1] >= t) {
                    return Err(corrupt(format!("base CSR adjacency of {v} is invalid")));
                }
            }
        }
        if targets.len() % 2 != 0 {
            return Err(corrupt(
                "base CSR stores an odd number of directed edges".into(),
            ));
        }
        let base = Graph::from_csr(offsets, targets);

        let n = r.get_usize("graph.delta.len")?;
        if n < base_n {
            return Err(corrupt(format!(
                "id space {n} smaller than base CSR {base_n}"
            )));
        }
        let mut delta = Vec::with_capacity(n);
        for _ in 0..n {
            delta.push(r.get_vec_u32("graph.delta.adj")?);
        }
        let delta_edges = r.get_usize("graph.delta_edges")?;
        let removed_n = r.get_usize("graph.removed.len")?;
        if removed_n != n {
            return Err(corrupt(
                "edge-tombstone table does not cover the id space".into(),
            ));
        }
        let mut removed = Vec::with_capacity(n);
        for _ in 0..n {
            removed.push(r.get_vec_u32("graph.removed.adj")?);
        }
        let removed_base_edges = r.get_usize("graph.removed_base_edges")?;
        let dead = r.get_vec_bool("graph.dead")?;
        if dead.len() != n {
            return Err(corrupt(
                "vertex-tombstone table does not cover the id space".into(),
            ));
        }
        let dead_count = dead.iter().filter(|&&d| d).count();
        let free = r.get_vec_u32("graph.free")?;
        // The free list must contain exactly the dead ids, each once — the
        // recycling invariant `add_vertex` relies on.
        if free.len() != dead_count {
            return Err(corrupt(format!(
                "free list has {} entries for {dead_count} tombstoned vertices",
                free.len()
            )));
        }
        let mut on_free = vec![false; n];
        for &v in &free {
            if (v as usize) >= n || !dead[v as usize] || on_free[v as usize] {
                return Err(corrupt(format!(
                    "free-list entry {v} is not a unique dead id"
                )));
            }
            on_free[v as usize] = true;
        }
        for (v, adj) in delta.iter().enumerate() {
            for &u in adj {
                if (u as usize) >= n {
                    return Err(corrupt(format!("delta edge ({v}, {u}) is out of range")));
                }
            }
        }
        for (v, gone) in removed.iter().enumerate() {
            for &u in gone {
                if (u as usize) >= n {
                    return Err(corrupt(format!(
                        "edge tombstone ({v}, {u}) is out of range"
                    )));
                }
            }
        }

        let dims = r.get_usize("graph.weights.dims")?;
        if dims == 0 {
            return Err(corrupt("weights need at least one dimension".into()));
        }
        let mut data = Vec::with_capacity(dims);
        for j in 0..dims {
            let col = r.get_vec_f64("graph.weights.dim")?;
            if col.len() != n {
                return Err(corrupt(format!(
                    "weight dimension {j} covers {} of {n} vertices",
                    col.len()
                )));
            }
            if let Some(&w) = col.iter().find(|w| !(w.is_finite() && **w > 0.0)) {
                return Err(corrupt(format!(
                    "weight dimension {j} holds non-positive value {w}"
                )));
            }
            data.push(col);
        }
        let totals = r.get_vec_f64("graph.weights.totals")?;
        if totals.len() != dims || totals.iter().any(|t| !t.is_finite()) {
            return Err(corrupt("weight totals are malformed".into()));
        }
        let weights = VertexWeights::from_raw_parts(data, totals);

        Ok(Self {
            base,
            delta,
            delta_edges,
            removed,
            removed_base_edges,
            dead,
            dead_count,
            free,
            weights,
            threads: 1,
            pending: HashMap::new(),
            deferred: false,
            deferred_ranges: 0,
        })
    }

    /// Approximate heap footprint of the adjacency structures in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.base.memory_bytes()
            + self
                .delta
                .iter()
                .chain(self.removed.iter())
                .map(|a| a.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
            + self.dead.len()
            + self.weights.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;

    fn seeded() -> DynamicGraph {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = VertexWeights::vertex_edge(&g);
        DynamicGraph::new(g, w)
    }

    #[test]
    fn reads_union_of_base_and_delta() {
        let mut dg = seeded();
        assert!(dg.add_edge(0, 3));
        assert_eq!(dg.num_edges(), 4);
        assert!(dg.has_edge(0, 3));
        assert!(dg.has_edge(3, 0));
        assert_eq!(dg.degree(0), 2);
        let mut n0: Vec<_> = dg.neighbors(0).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3]);
    }

    #[test]
    fn rejects_duplicates_and_self_loops() {
        let mut dg = seeded();
        assert!(!dg.add_edge(0, 1), "base duplicate");
        assert!(dg.add_edge(0, 2));
        assert!(!dg.add_edge(2, 0), "delta duplicate");
        assert!(!dg.add_edge(1, 1), "self-loop");
        assert_eq!(dg.num_edges(), 4);
    }

    #[test]
    fn streamed_vertices_get_fresh_ids_and_weights() {
        let mut dg = seeded();
        let v = dg.add_vertex(&[1.0, 2.0]);
        assert_eq!(v, 4);
        assert_eq!(dg.num_vertices(), 5);
        assert_eq!(dg.degree(v), 0);
        assert!(dg.add_edge(v, 0));
        assert_eq!(dg.degree(v), 1);
        assert_eq!(dg.weights().weight(1, v), 2.0);
    }

    #[test]
    fn compaction_preserves_the_graph() {
        let mut dg = seeded();
        let v = dg.add_vertex(&[1.0, 1.0]);
        dg.add_edge(v, 1);
        dg.add_edge(0, 2);
        let before = dg.snapshot();
        assert!(dg.compact().is_none(), "no dead vertices, no remap");
        assert_eq!(dg.delta_edge_count(), 0);
        assert_eq!(dg.compacted_csr(), &before);
        assert_eq!(dg.num_edges(), 5);
    }

    #[test]
    fn compaction_trigger_tracks_delta_fraction() {
        let mut dg = seeded();
        assert!(!dg.needs_compaction(0.3));
        dg.add_edge(0, 2);
        assert!(dg.needs_compaction(0.3), "1 delta edge / 3 base > 0.3");
        assert!(dg.compact().is_none());
        assert!(!dg.needs_compaction(0.3));
    }

    #[test]
    fn weight_drift_updates_totals() {
        let mut dg = seeded();
        let before = dg.weights().total(0);
        dg.set_weight(2, 0, 3.0);
        assert!((dg.weights().total(0) - (before + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn remove_edge_from_base_and_delta() {
        let mut dg = seeded();
        // Delta edge: removed in place, not tombstoned.
        assert!(dg.add_edge(0, 3));
        assert!(dg.remove_edge(0, 3));
        assert_eq!(dg.delta_edge_count(), 0);
        assert_eq!(dg.tombstoned_edge_count(), 0);
        assert!(!dg.has_edge(0, 3));
        // Base edge: tombstoned.
        assert!(dg.remove_edge(1, 2));
        assert_eq!(dg.tombstoned_edge_count(), 1);
        assert!(!dg.has_edge(1, 2));
        assert!(!dg.has_edge(2, 1));
        assert_eq!(dg.num_edges(), 2);
        assert_eq!(dg.degree(1), 1);
        let n1: Vec<_> = dg.neighbors(1).collect();
        assert_eq!(n1, vec![0]);
        // Removing a missing / already-removed edge is a no-op.
        assert!(!dg.remove_edge(1, 2), "already tombstoned");
        assert!(!dg.remove_edge(0, 2), "never existed");
        assert!(!dg.remove_edge(1, 1), "self-loop");
        assert_eq!(dg.num_edges(), 2);
    }

    #[test]
    fn re_adding_a_tombstoned_base_edge_resurrects_it() {
        let mut dg = seeded();
        assert!(dg.remove_edge(1, 2));
        assert!(dg.add_edge(2, 1), "re-add clears the tombstone");
        assert_eq!(dg.tombstoned_edge_count(), 0);
        assert_eq!(dg.delta_edge_count(), 0, "must not duplicate into delta");
        assert!(dg.has_edge(1, 2));
        assert_eq!(dg.num_edges(), 3);
        assert!(!dg.add_edge(1, 2), "now a plain duplicate");
    }

    #[test]
    fn remove_vertex_sheds_edges_and_reads_isolated() {
        let mut dg = seeded();
        dg.add_edge(1, 3);
        let mut nbrs = dg.remove_vertex(1);
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 2, 3]);
        assert!(!dg.is_live(1));
        assert_eq!(dg.num_live_vertices(), 3);
        assert_eq!(dg.num_vertices(), 4, "id space is stable until purge");
        assert_eq!(dg.degree(1), 0);
        assert_eq!(dg.neighbors(1).count(), 0);
        assert_eq!(dg.degree(0), 0);
        assert!(!dg.has_edge(0, 1));
        assert_eq!(dg.num_edges(), 1, "only (2, 3) survives");
        // The snapshot keeps the id space and isolates the dead vertex.
        let snap = dg.snapshot();
        assert_eq!(snap.num_vertices(), 4);
        assert_eq!(snap.num_edges(), 1);
        assert_eq!(snap.degree(1), 0);
    }

    #[test]
    fn add_vertex_recycles_tombstoned_ids() {
        let mut dg = seeded();
        dg.remove_vertex(1);
        dg.remove_vertex(3);
        assert_eq!(dg.free_ids(), &[1, 3]);
        // LIFO: the most recently tombstoned id comes back first.
        let a = dg.add_vertex(&[9.0, 8.0]);
        assert_eq!(a, 3);
        assert!(dg.is_live(3));
        assert_eq!(dg.num_tombstoned(), 1);
        assert_eq!(dg.weights().weight(0, 3), 9.0);
        assert_eq!(dg.weights().weight(1, 3), 8.0);
        // The recycled slot reads fresh: no resurrected adjacency.
        assert_eq!(dg.degree(3), 0);
        assert_eq!(dg.neighbors(3).count(), 0);
        assert!(dg.add_edge(3, 0));
        assert_eq!(dg.degree(3), 1);
        // Second arrival takes the next free id; third extends the space.
        assert_eq!(dg.add_vertex(&[1.0, 1.0]), 1);
        assert_eq!(dg.add_vertex(&[1.0, 1.0]), 4);
        assert_eq!(dg.num_vertices(), 5);
        assert_eq!(dg.num_tombstoned(), 0);
        assert!(dg.free_ids().is_empty());
        // With every slot live again, compaction has nothing to purge.
        assert!(dg.compact().is_none(), "no dead vertices, no remap");
    }

    #[test]
    fn purge_clears_the_free_list() {
        let mut dg = seeded();
        dg.remove_vertex(0);
        assert_eq!(dg.free_ids(), &[0]);
        let map = dg.compact().expect("purge remaps");
        assert_eq!(map[0], TOMBSTONE);
        assert!(dg.free_ids().is_empty(), "purged ids are gone, not free");
        // The next arrival extends the (renumbered) id space.
        assert_eq!(dg.add_vertex(&[1.0, 1.0]), 3);
    }

    #[test]
    fn purging_compaction_returns_the_remap() {
        let mut dg = seeded();
        let v = dg.add_vertex(&[1.0, 7.0]); // id 4
        dg.add_edge(v, 0);
        dg.remove_vertex(1);
        let w2 = dg.weights().weight(1, 2);
        let map = dg.compact().expect("dead vertex must force a remap");
        assert_eq!(map, vec![0, TOMBSTONE, 1, 2, 3]);
        assert_eq!(dg.num_vertices(), 4);
        assert_eq!(dg.num_live_vertices(), 4);
        assert_eq!(dg.num_edges(), 2, "(2,3) and (4,0) survive, remapped");
        assert!(dg.has_edge(1, 2), "old (2,3) -> new (1,2)");
        assert!(dg.has_edge(0, 3), "old (0,4) -> new (0,3)");
        assert_eq!(dg.weights().num_vertices(), 4);
        assert_eq!(dg.weights().weight(1, 1), w2, "weights follow the remap");
        assert_eq!(dg.weights().weight(1, 3), 7.0);
        // Once purged, ids are stable again and compact is a no-op.
        assert!(dg.compact().is_none());
    }

    #[test]
    fn live_snapshot_matches_purging_compaction() {
        let mut dg = seeded();
        dg.add_edge(0, 2);
        dg.remove_vertex(3);
        let (live, live_w, live_ids) = dg.live_snapshot();
        assert_eq!(live_ids, vec![0, 1, 2]);
        assert_eq!(dg.num_vertices(), 4, "live_snapshot must not mutate");
        dg.compact().expect("remap");
        assert_eq!(&live, dg.csr());
        assert_eq!(live_w.total(0), dg.weights().total(0));
    }

    #[test]
    #[should_panic(expected = "tombstoned")]
    fn compacted_csr_rejects_pending_dead_vertices() {
        let mut dg = seeded();
        dg.remove_vertex(0);
        dg.compacted_csr();
    }

    #[test]
    fn dead_vertices_trigger_compaction() {
        let mut dg = seeded();
        assert!(!dg.needs_compaction(0.2));
        dg.remove_vertex(0);
        assert!(dg.needs_compaction(0.2), "1 dead / 4 vertices > 0.2");
        let _ = dg.compact().expect("remap");
        assert!(!dg.needs_compaction(0.2));
    }

    #[test]
    fn deferred_batch_matches_direct_mutation() {
        // The same op script, deferred and direct, must commit identical
        // state — including tombstone resurrections and add/remove
        // cancellations that never reach the committed lists.
        let script = |dg: &mut DynamicGraph| {
            assert!(dg.add_edge(0, 3)); // delta insert
            assert!(dg.remove_edge(1, 2)); // base tombstone
            assert!(dg.add_edge(2, 1)); // resurrection cancels the tombstone
            assert!(dg.remove_edge(0, 3)); // cancels the delta insert
            assert!(dg.add_edge(0, 2)); // delta insert that survives
            assert!(dg.remove_edge(0, 1)); // base tombstone that survives
            let v = dg.add_vertex(&[1.0, 1.0]);
            assert!(dg.add_edge(v, 2));
        };
        let mut direct = seeded();
        script(&mut direct);
        let mut def = seeded();
        def.set_threads(4);
        def.begin_deferred();
        script(&mut def);
        assert!(def.flush_deferred() >= 1);
        assert_eq!(def.num_edges(), direct.num_edges());
        assert_eq!(def.delta_edge_count(), direct.delta_edge_count());
        assert_eq!(def.tombstoned_edge_count(), direct.tombstoned_edge_count());
        assert_eq!(def.snapshot(), direct.snapshot());
    }

    #[test]
    fn deferred_reads_see_through_the_overlay() {
        let mut dg = seeded();
        dg.begin_deferred();
        assert!(dg.add_edge(0, 2));
        assert!(dg.has_edge(0, 2));
        assert!(!dg.add_edge(2, 0), "duplicate must be seen via overlay");
        assert_eq!(dg.degree(0), 2);
        assert!(dg.remove_edge(0, 1));
        assert!(!dg.has_edge(0, 1));
        assert_eq!(dg.degree(0), 1);
        assert_eq!(dg.num_edges(), 3);
        // Mid-batch vertex removal flushes implicitly and stays exact.
        let mut nbrs = dg.remove_vertex(2);
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 1, 3]);
        assert!(dg.flush_deferred() >= 1);
        assert!(!dg.has_edge(0, 2));
        assert_eq!(dg.degree(0), 0);
    }

    #[test]
    fn deferred_flush_multi_range_matches_direct() {
        // Touch > 2 * DEFERRED_FLUSH_CHUNK vertices so the flush takes the
        // grouped multi-range path at threads 4.
        let n: u32 = 600;
        let g = graph_from_edges(n as usize, &[(0, 1)]);
        let w = VertexWeights::from_vectors(vec![vec![1.0; n as usize]]);
        let mut direct = DynamicGraph::new(g, w);
        let mut def = direct.clone();
        def.set_threads(4);
        def.begin_deferred();
        for v in 1..n - 1 {
            assert!(def.add_edge(v, v + 1));
            assert!(direct.add_edge(v, v + 1));
        }
        let ranges = def.flush_deferred();
        assert_eq!(ranges, 599usize.div_ceil(DEFERRED_FLUSH_CHUNK));
        assert_eq!(def.delta_edge_count(), direct.delta_edge_count());
        assert_eq!(def.snapshot(), direct.snapshot());
    }

    #[test]
    fn parallel_compaction_is_bit_identical_to_serial() {
        let churn = |dg: &mut DynamicGraph| {
            let v = dg.add_vertex(&[2.0, 3.0]); // id 4
            dg.add_edge(v, 0);
            dg.add_edge(0, 2);
            dg.remove_edge(1, 2);
            dg.remove_vertex(1); // stays dead -> purging compaction
        };
        let mut serial = seeded();
        churn(&mut serial);
        let mut parallel = seeded();
        parallel.set_threads(4);
        churn(&mut parallel);
        assert_eq!(serial.compact(), parallel.compact());
        assert_eq!(serial.csr(), parallel.csr());
        let dims = serial.weights().dims();
        for j in 0..dims {
            assert_eq!(serial.weights().dim(j), parallel.weights().dim(j));
            assert!(serial.weights().total(j) == parallel.weights().total(j));
        }
    }

    #[test]
    fn removed_edges_count_toward_the_compaction_trigger() {
        let mut dg = seeded();
        assert!(!dg.needs_compaction(0.3));
        dg.remove_edge(0, 1);
        assert!(dg.needs_compaction(0.3), "1 tombstone / 3 base > 0.3");
        assert!(dg.compact().is_none(), "edge-only churn keeps ids");
        assert_eq!(dg.num_edges(), 2);
        assert_eq!(dg.tombstoned_edge_count(), 0);
    }
}
