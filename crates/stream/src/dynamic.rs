//! [`DynamicGraph`]: a CSR graph plus an in-memory delta, with periodic
//! compaction.
//!
//! `mdbgp-graph`'s [`Graph`] is immutable CSR — ideal for the GD mat-vec,
//! hostile to insertions. The streaming layer therefore keeps a **base** CSR
//! plus per-vertex sorted **delta** adjacency lists. Reads see the union;
//! writes go to the delta; [`DynamicGraph::compact`] merges the delta into a
//! fresh CSR (via [`GraphBuilder::from_graph`]) once it exceeds a
//! configurable fraction of the base. Refinement always runs on the
//! compacted CSR, so the GD kernels never pay for the indirection.

use mdbgp_graph::{Graph, GraphBuilder, VertexId, VertexWeights};

/// A growing graph: base CSR + delta adjacency + multi-dimensional weights.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    base: Graph,
    /// Per-vertex delta adjacency, sorted ascending; indexes `0..n` where
    /// `n >= base.num_vertices()` (vertices past the base have all their
    /// adjacency here).
    delta: Vec<Vec<VertexId>>,
    /// Undirected delta edge count.
    delta_edges: usize,
    weights: VertexWeights,
}

impl DynamicGraph {
    /// Wraps an existing graph and its weights.
    ///
    /// # Panics
    /// Panics if `weights` does not cover the graph.
    pub fn new(base: Graph, weights: VertexWeights) -> Self {
        assert_eq!(
            weights.num_vertices(),
            base.num_vertices(),
            "weights must cover the base graph"
        );
        let n = base.num_vertices();
        Self {
            base,
            delta: vec![Vec::new(); n],
            delta_edges: 0,
            weights,
        }
    }

    /// An empty dynamic graph with `dims` weight dimensions (pure streaming
    /// from nothing).
    pub fn empty(dims: usize) -> Self {
        assert!(dims > 0);
        Self {
            base: Graph::empty(0),
            delta: Vec::new(),
            delta_edges: 0,
            weights: VertexWeights::from_vectors(vec![Vec::new(); dims]),
        }
    }

    /// Number of vertices (base + streamed).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.delta.len()
    }

    /// Number of undirected edges (base + delta).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.delta_edges
    }

    /// Edges still sitting in the delta.
    #[inline]
    pub fn delta_edge_count(&self) -> usize {
        self.delta_edges
    }

    /// Degree of `v` across base and delta.
    pub fn degree(&self, v: VertexId) -> usize {
        let base_deg = if (v as usize) < self.base.num_vertices() {
            self.base.degree(v)
        } else {
            0
        };
        base_deg + self.delta[v as usize].len()
    }

    /// Neighbours of `v`: base slice chained with delta (each sorted; the
    /// union is *not* globally sorted, but is duplicate-free).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let base: &[VertexId] = if (v as usize) < self.base.num_vertices() {
            self.base.neighbors(v)
        } else {
            &[]
        };
        base.iter()
            .copied()
            .chain(self.delta[v as usize].iter().copied())
    }

    /// Whether edge `{u, v}` exists in base or delta.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if (u as usize) < self.base.num_vertices()
            && (v as usize) < self.base.num_vertices()
            && self.base.has_edge(u, v)
        {
            return true;
        }
        self.delta[u as usize].binary_search(&v).is_ok()
    }

    /// The multi-dimensional vertex weights.
    #[inline]
    pub fn weights(&self) -> &VertexWeights {
        &self.weights
    }

    /// Appends a vertex with the given per-dimension weights; returns its id.
    pub fn add_vertex(&mut self, weight_row: &[f64]) -> VertexId {
        self.weights.push_vertex(weight_row);
        self.delta.push(Vec::new());
        (self.delta.len() - 1) as VertexId
    }

    /// Adds undirected edge `{u, v}` to the delta. Returns `false` (and
    /// does nothing) for self-loops and duplicates.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.num_vertices();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        let du = &mut self.delta[u as usize];
        let pos = du.binary_search(&v).unwrap_err();
        du.insert(pos, v);
        let dv = &mut self.delta[v as usize];
        let pos = dv.binary_search(&u).unwrap_err();
        dv.insert(pos, u);
        self.delta_edges += 1;
        true
    }

    /// Overwrites weight dimension `dim` of `v`.
    pub fn set_weight(&mut self, v: VertexId, dim: usize, value: f64) {
        self.weights.set_weight(dim, v, value);
    }

    /// Whether the delta has outgrown `slack` as a fraction of base edges
    /// (always true once streamed vertices exist but base lags behind).
    pub fn needs_compaction(&self, slack: f64) -> bool {
        self.delta_edges as f64 > slack * self.base.num_edges().max(1) as f64
    }

    /// Merges the delta into a fresh base CSR. O(n + m) when the delta is
    /// non-empty; a no-op otherwise.
    pub fn compact(&mut self) {
        if self.delta_edges == 0 && self.base.num_vertices() == self.num_vertices() {
            return;
        }
        self.base = self.merged_builder().build();
        for adj in &mut self.delta {
            adj.clear();
        }
        self.delta_edges = 0;
    }

    /// Compacts if needed and returns the full CSR view — the entry point
    /// for refinement, which runs the GD kernels on plain CSR.
    pub fn compacted_csr(&mut self) -> &Graph {
        self.compact();
        &self.base
    }

    /// The base CSR *without* compacting: misses delta edges unless
    /// [`Self::compact`] ran since the last mutation. Use
    /// [`Self::compacted_csr`] unless a prior compaction is guaranteed.
    #[inline]
    pub fn csr(&self) -> &Graph {
        &self.base
    }

    /// Builds the full CSR without mutating (test oracle; prefer
    /// [`Self::compacted_csr`] in production paths).
    pub fn snapshot(&self) -> Graph {
        self.merged_builder().build()
    }

    /// Base edges + delta edges in one builder, sized for the full graph.
    fn merged_builder(&self) -> GraphBuilder {
        let mut builder = GraphBuilder::from_graph(&self.base);
        builder.grow_to(self.num_vertices());
        for (u, adj) in self.delta.iter().enumerate() {
            for &v in adj {
                if (u as VertexId) < v {
                    builder.add_edge(u as VertexId, v);
                }
            }
        }
        builder
    }

    /// Approximate heap footprint of the adjacency structures in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.base.memory_bytes()
            + self
                .delta
                .iter()
                .map(|a| a.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
            + self.weights.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;

    fn seeded() -> DynamicGraph {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = VertexWeights::vertex_edge(&g);
        DynamicGraph::new(g, w)
    }

    #[test]
    fn reads_union_of_base_and_delta() {
        let mut dg = seeded();
        assert!(dg.add_edge(0, 3));
        assert_eq!(dg.num_edges(), 4);
        assert!(dg.has_edge(0, 3));
        assert!(dg.has_edge(3, 0));
        assert_eq!(dg.degree(0), 2);
        let mut n0: Vec<_> = dg.neighbors(0).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3]);
    }

    #[test]
    fn rejects_duplicates_and_self_loops() {
        let mut dg = seeded();
        assert!(!dg.add_edge(0, 1), "base duplicate");
        assert!(dg.add_edge(0, 2));
        assert!(!dg.add_edge(2, 0), "delta duplicate");
        assert!(!dg.add_edge(1, 1), "self-loop");
        assert_eq!(dg.num_edges(), 4);
    }

    #[test]
    fn streamed_vertices_get_fresh_ids_and_weights() {
        let mut dg = seeded();
        let v = dg.add_vertex(&[1.0, 2.0]);
        assert_eq!(v, 4);
        assert_eq!(dg.num_vertices(), 5);
        assert_eq!(dg.degree(v), 0);
        assert!(dg.add_edge(v, 0));
        assert_eq!(dg.degree(v), 1);
        assert_eq!(dg.weights().weight(1, v), 2.0);
    }

    #[test]
    fn compaction_preserves_the_graph() {
        let mut dg = seeded();
        let v = dg.add_vertex(&[1.0, 1.0]);
        dg.add_edge(v, 1);
        dg.add_edge(0, 2);
        let before = dg.snapshot();
        dg.compact();
        assert_eq!(dg.delta_edge_count(), 0);
        assert_eq!(dg.compacted_csr(), &before);
        assert_eq!(dg.num_edges(), 5);
    }

    #[test]
    fn compaction_trigger_tracks_delta_fraction() {
        let mut dg = seeded();
        assert!(!dg.needs_compaction(0.3));
        dg.add_edge(0, 2);
        assert!(dg.needs_compaction(0.3), "1 delta edge / 3 base > 0.3");
        dg.compact();
        assert!(!dg.needs_compaction(0.3));
    }

    #[test]
    fn weight_drift_updates_totals() {
        let mut dg = seeded();
        let before = dg.weights().total(0);
        dg.set_weight(2, 0, 3.0);
        assert!((dg.weights().total(0) - (before + 2.0)).abs() < 1e-12);
    }
}
