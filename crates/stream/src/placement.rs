//! Online vertex placement: linear deterministic greedy (LDG) generalized
//! to multi-dimensional balance.
//!
//! When a vertex arrives it is assigned once, using only its adjacency to
//! already-placed vertices and the current shard loads (Stanton & Kliot's
//! streaming model). Classic LDG scores a part by
//! `|N(v) ∩ P| · (1 − |P|/C)`; here the single capacity fraction becomes
//! the **worst** fraction across the `d` weight dimensions — the same
//! "every slab simultaneously" semantics as `mdbgp-core`'s
//! `FeasibleRegion`, with each slab's upper bound `(1 + ε) · w^{(j)}(V)/k`.
//! A part with no room in *any* dimension is infeasible; if every part is
//! infeasible (possible under adversarial drift) the least-overloaded part
//! takes the vertex and the refinement pass repairs balance afterwards.
//!
//! The scoring sweep over the `k` parts is embarrassingly parallel: with
//! [`LdgPlacer::threads`] > 1 and a part count large enough to amortize a
//! spawn, disjoint part ranges are scored concurrently
//! ([`mdbgp_core::parallel::fold_ranges`]) and the per-range winners
//! reduced — bitwise identical to the serial sweep, because the reduction
//! applies the same (score, fullness, lowest part id) ordering.
//!
//! ## Speculative placement
//!
//! The staged ingest pipeline places a whole batch of arrivals at once:
//! fixed-size chunks of arrivals are scored concurrently against a frozen
//! [`LoadSnapshot`] plus a chunk-local [`ReservationLedger`]
//! ([`LdgPlacer::place_with`] over a [`LoadView`]), so no worker ever
//! observes another worker's in-flight decisions — placements are a pure
//! function of the snapshot and the (thread-count-independent) chunk
//! boundaries. Cross-chunk capacity conflicts are detected and repaired
//! afterwards by the engine's deterministic repair stage.

use crate::store::{LoadSnapshot, PartitionStore};
use mdbgp_core::parallel;

/// Part count below which the scoring sweep stays serial — a scoped spawn
/// costs more than scoring a few hundred parts.
const MIN_PARALLEL_PARTS: usize = 256;

/// Per-range sweep result: the best feasible candidate
/// `(part, score, fullness)` if any, and the least-full part
/// `(part, fullness)` as the overflow fallback.
type RangeScan = (Option<(u32, f64, f64)>, (u32, f64));

/// Read-only per-`(part, dimension)` loads a placement decision scores
/// against. The serving path scores the live [`PartitionStore`]; the
/// speculative pipeline scores a frozen [`LoadSnapshot`] plus pending
/// [`ReservationLedger`] reservations.
pub trait LoadView {
    /// Load of part `p` in dimension `j` as this view sees it.
    fn load(&self, p: u32, j: usize) -> f64;
}

impl LoadView for PartitionStore {
    #[inline]
    fn load(&self, p: u32, j: usize) -> f64 {
        PartitionStore::load(self, p, j)
    }
}

/// Weight a placement stage has promised to parts but not yet committed:
/// a dense per-`(part, dimension)` accumulator layered over a frozen
/// [`LoadSnapshot`]. Chunk workers keep one each (disjoint, no
/// synchronization); the repair stage keeps a global one.
#[derive(Clone, Debug)]
pub struct ReservationLedger {
    dims: usize,
    reserved: Vec<f64>,
}

impl ReservationLedger {
    /// An empty ledger for `k` parts × `dims` dimensions.
    pub fn new(k: usize, dims: usize) -> Self {
        Self {
            dims,
            reserved: vec![0.0; k * dims],
        }
    }

    /// Reserves `row` on part `p`.
    pub fn reserve(&mut self, p: u32, row: &[f64]) {
        debug_assert_eq!(row.len(), self.dims);
        for (j, &w) in row.iter().enumerate() {
            self.reserved[p as usize * self.dims + j] += w;
        }
    }

    /// Returns a reservation (an evicted speculative placement).
    pub fn release(&mut self, p: u32, row: &[f64]) {
        debug_assert_eq!(row.len(), self.dims);
        for (j, &w) in row.iter().enumerate() {
            self.reserved[p as usize * self.dims + j] -= w;
        }
    }

    /// Weight currently reserved on `(p, j)`.
    #[inline]
    pub fn reserved(&self, p: u32, j: usize) -> f64 {
        self.reserved[p as usize * self.dims + j]
    }

    /// Folds another ledger into this one (merging per-chunk reservations
    /// into the repair stage's global view).
    pub fn merge(&mut self, other: &ReservationLedger) {
        debug_assert_eq!(self.reserved.len(), other.reserved.len());
        for (slot, &r) in self.reserved.iter_mut().zip(&other.reserved) {
            *slot += r;
        }
    }
}

/// [`LoadSnapshot`] + [`ReservationLedger`]: what a speculative placement
/// decision actually scores against.
pub struct ReservedView<'a> {
    pub snapshot: &'a LoadSnapshot,
    pub ledger: &'a ReservationLedger,
}

impl LoadView for ReservedView<'_> {
    #[inline]
    fn load(&self, p: u32, j: usize) -> f64 {
        self.snapshot.load(p, j) + self.ledger.reserved(p, j)
    }
}

/// Multi-dimensional LDG configuration.
#[derive(Clone, Copy, Debug)]
pub struct LdgPlacer {
    /// Balance tolerance ε: per-dimension capacity is `(1+ε)·w^{(j)}(V)/k`.
    pub epsilon: f64,
    /// Worker threads for the scoring sweep (1 = serial; only engaged for
    /// part counts where the spawn amortizes).
    pub threads: usize,
}

impl LdgPlacer {
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0);
        Self {
            epsilon,
            threads: 1,
        }
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0);
        self.threads = threads;
        self
    }

    /// Chooses a part for a vertex with weight row `weight_row` whose
    /// placed neighbours are distributed as `neighbor_counts` (length `k`).
    /// Capacities come from the store's **live** per-dimension totals plus
    /// the arriving row — so removed weight stops propping up the slabs
    /// the moment it is released, not at the next purge.
    pub fn place(
        &self,
        store: &PartitionStore,
        neighbor_counts: &[usize],
        weight_row: &[f64],
    ) -> u32 {
        let k = store.num_parts();
        // Per-dimension capacity, from live totals that include the
        // arriving vertex (it is not pushed into the store yet).
        let caps: Vec<f64> = (0..weight_row.len())
            .map(|j| (1.0 + self.epsilon) * (store.total(j) + weight_row[j]) / k as f64)
            .collect();
        self.place_with(k, store, &caps, neighbor_counts, weight_row)
    }

    /// The chunked scoring core: chooses a part against an arbitrary
    /// [`LoadView`] and precomputed per-dimension capacities. The serving
    /// path calls it through [`Self::place`]; the speculative placement
    /// and conflict-repair stages call it directly with a frozen snapshot
    /// plus reservations and batch-wide capacities, so every stage ranks
    /// candidates with the identical (score, fullness, lowest part id)
    /// order.
    pub fn place_with(
        &self,
        k: usize,
        loads: &(impl LoadView + Sync),
        caps: &[f64],
        neighbor_counts: &[usize],
        weight_row: &[f64],
    ) -> u32 {
        debug_assert_eq!(neighbor_counts.len(), k);
        // fold_ranges itself stays sequential below MIN_PARALLEL_PARTS.
        let partials = parallel::fold_ranges(k, self.threads, MIN_PARALLEL_PARTS, |range| {
            scan_parts(range, loads, caps, neighbor_counts, weight_row)
        });
        // Reduce per-range winners left to right: ranges are in ascending
        // part order, and the comparators prefer the incumbent on exact
        // ties, so the result matches the serial sweep exactly.
        let mut best: Option<(u32, f64, f64)> = None;
        let mut fallback: (u32, f64) = (0, f64::INFINITY);
        for (range_best, range_fallback) in partials {
            if let Some((p, score, fullness)) = range_best {
                if best.is_none_or(|(_, bs, bf)| better_candidate(score, fullness, bs, bf)) {
                    best = Some((p, score, fullness));
                }
            }
            if range_fallback.1 < fallback.1 {
                fallback = range_fallback;
            }
        }
        best.map(|(p, _, _)| p).unwrap_or(fallback.0)
    }
}

/// Scores the parts in `range`, returning the range's best feasible
/// candidate and its overflow fallback.
fn scan_parts(
    range: std::ops::Range<usize>,
    loads: &impl LoadView,
    caps: &[f64],
    neighbor_counts: &[usize],
    weight_row: &[f64],
) -> RangeScan {
    let mut best: Option<(u32, f64, f64)> = None; // feasible: argmax score
    let mut fallback: (u32, f64) = (range.start as u32, f64::INFINITY); // argmin fullness
    for p in range {
        let p = p as u32;
        // Worst capacity fraction across dimensions if v lands on p.
        let mut fullness: f64 = 0.0;
        for (j, &w) in weight_row.iter().enumerate() {
            fullness = fullness.max((loads.load(p, j) + w) / caps[j]);
        }
        if fullness < fallback.1 {
            fallback = (p, fullness);
        }
        if fullness > 1.0 {
            continue; // would break a slab
        }
        let score = neighbor_counts[p as usize] as f64 * (1.0 - fullness);
        if best.is_none_or(|(_, bs, bf)| better_candidate(score, fullness, bs, bf)) {
            best = Some((p, score, fullness));
        }
    }
    (best, fallback)
}

/// Strict total order on candidates: higher score, then more headroom,
/// then the incumbent (= lowest part id, since parts are scanned in
/// ascending order). Exact comparisons only — a tolerance band here is
/// not transitive, so chunked reduction could disagree with the serial
/// scan and the partition would depend on the thread count.
fn better_candidate(score: f64, fullness: f64, best_score: f64, best_fullness: f64) -> bool {
    score > best_score || (score == best_score && fullness < best_fullness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::{Partition, VertexWeights};

    /// Store with k=2 over 4 unit-weight vertices split 2/2.
    fn unit_store() -> PartitionStore {
        let w = VertexWeights::unit(4);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        PartitionStore::new(&p, &w)
    }

    #[test]
    fn prefers_the_part_with_more_neighbors() {
        let store = unit_store();
        let placer = LdgPlacer::new(0.5);
        let p = placer.place(&store, &[3, 1], &[1.0]);
        assert_eq!(p, 0);
        let p = placer.place(&store, &[0, 2], &[1.0]);
        assert_eq!(p, 1);
    }

    #[test]
    fn respects_capacity_over_affinity() {
        // Part 0 has all the neighbours but no room: cap = 1.05 * 5/2 =
        // 2.625 and part 0 already holds 3.
        let w = VertexWeights::unit(4);
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let store = PartitionStore::new(&p, &w);
        let placer = LdgPlacer::new(0.05);
        let chosen = placer.place(&store, &[4, 0], &[1.0]);
        assert_eq!(chosen, 1, "full part must be skipped despite affinity");
    }

    #[test]
    fn no_neighbors_balances_load() {
        let w = VertexWeights::unit(3);
        let p = Partition::new(vec![0, 0, 1], 2);
        let store = PartitionStore::new(&p, &w);
        let placer = LdgPlacer::new(0.5);
        assert_eq!(placer.place(&store, &[0, 0], &[1.0]), 1);
    }

    #[test]
    fn overflow_picks_least_loaded() {
        // Every part over cap (ε = 0): fall back to least-full.
        let w = VertexWeights::unit(4);
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let store = PartitionStore::new(&p, &w);
        let placer = LdgPlacer::new(0.0);
        assert_eq!(placer.place(&store, &[2, 2], &[1.0]), 1);
    }

    #[test]
    fn released_capacity_counts_immediately() {
        // As `respects_capacity_over_affinity`, but part 0 sheds a vertex
        // first. The live totals shrink with it (cap = 1.6·(3+1)/2 = 3.2
        // after one release, at ε = 0.6), so part 0 — at live load 2 —
        // admits the arrival on affinity without waiting for a purge.
        let w = VertexWeights::unit(4);
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let mut store = PartitionStore::new(&p, &w);
        store.release_vertex(0, &[1.0]);
        assert_eq!(store.total(0), 3.0);
        let placer = LdgPlacer::new(0.6);
        assert_eq!(placer.place(&store, &[4, 0], &[1.0]), 0);
        // At a tight ε the same part is still infeasible (cap = 2.1 < 3):
        // releases free capacity, they do not suspend the slabs.
        let placer = LdgPlacer::new(0.05);
        assert_eq!(placer.place(&store, &[4, 0], &[1.0]), 1);
    }

    #[test]
    fn multi_dim_capacity_is_the_worst_dimension() {
        // Two dims; part 0 has room in dim 0 but not dim 1.
        let w =
            VertexWeights::from_vectors(vec![vec![1.0, 1.0, 1.0, 1.0], vec![5.0, 5.0, 1.0, 1.0]]);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let store = PartitionStore::new(&p, &w);
        let placer = LdgPlacer::new(0.25);
        // dim-0 cap = 1.25·5/2 = 3.125: part 0 fits (2+1). dim-1 cap =
        // 1.25·13/2 = 8.125: part 0 at 10+1 overflows -> infeasible even
        // though dim 0 has room.
        let chosen = placer.place(&store, &[5, 0], &[1.0, 1.0]);
        assert_eq!(chosen, 1);
    }

    #[test]
    fn reservations_count_against_capacity() {
        // Speculative scoring: a chunk's own reservations must eat into
        // the frozen snapshot's headroom exactly like committed load.
        let mut store = unit_store();
        let snapshot = store.load_snapshot();
        let mut ledger = ReservationLedger::new(2, 1);
        let placer = LdgPlacer::new(0.05);
        // Batch of two unit arrivals: caps = 1.05 · (4 + 2) / 2 = 3.15.
        let caps = [1.05 * 6.0 / 2.0];
        let view = ReservedView {
            snapshot: &snapshot,
            ledger: &ledger,
        };
        assert_eq!(
            placer.place_with(2, &view, &caps, &[5, 0], &[1.0]),
            0,
            "affinity wins while part 0 has room"
        );
        ledger.reserve(0, &[1.0]);
        let view = ReservedView {
            snapshot: &snapshot,
            ledger: &ledger,
        };
        assert_eq!(
            placer.place_with(2, &view, &caps, &[5, 0], &[1.0]),
            1,
            "a reservation fills part 0 past the slab"
        );
        // Releasing the reservation restores the headroom; merge folds a
        // second chunk's ledger in.
        ledger.release(0, &[1.0]);
        let mut other = ReservationLedger::new(2, 1);
        other.reserve(0, &[1.0]);
        ledger.merge(&other);
        assert_eq!(ledger.reserved(0, 0), 1.0);
        let view = ReservedView {
            snapshot: &snapshot,
            ledger: &ledger,
        };
        assert_eq!(placer.place_with(2, &view, &caps, &[5, 0], &[1.0]), 1);
    }

    #[test]
    fn parallel_sweep_matches_serial_at_large_k() {
        // 512 parts with deterministic pseudo-random loads and neighbour
        // counts: the threaded sweep must pick exactly the serial winner.
        let k = 512;
        let n = 4 * k;
        let labels: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
        let w = VertexWeights::from_vectors(vec![(0..n)
            .map(|v| 1.0 + (v * 2654435761 % 97) as f64 / 10.0)
            .collect()]);
        let store = PartitionStore::new(&Partition::new(labels, k), &w);
        let counts: Vec<usize> = (0..k).map(|p| p * 48271 % 7).collect();
        let serial = LdgPlacer::new(0.2).place(&store, &counts, &[1.0]);
        for threads in [2, 3, 8] {
            let par = LdgPlacer::new(0.2)
                .with_threads(threads)
                .place(&store, &counts, &[1.0]);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }
}
