//! The staged ingest pipeline: the data carried between
//! [`crate::StreamingPartitioner::ingest`]'s stages, and the two stages
//! that place a batch's arrivals.
//!
//! A batch flows through six named stages:
//!
//! 1. **validate** — the whole batch is checked against the current state
//!    (plus a simulation of the ids the batch itself will create), so
//!    ingestion is all-or-nothing;
//! 2. **split** — updates are applied to the [`crate::DynamicGraph`] in
//!    order, but arrivals are *not* placed: they are collected as
//!    `PendingArrival`s, and every store-side effect that touches a
//!    pending arrival is parked in a `DeferredEffect` ledger (effects
//!    between already-assigned vertices apply immediately, as before);
//! 3. **speculative placement** (`speculative_place`) — arrivals are
//!    scored in fixed-size chunks against a frozen [`LoadSnapshot`], each
//!    chunk holding its own capacity [`ReservationLedger`]; chunks run
//!    concurrently on the worker pool, and because the chunk boundaries
//!    depend only on the batch (never the thread count), the speculative
//!    decisions are identical at any thread count;
//! 4. **conflict repair** (`conflict_repair`) — chunk-local reservations
//!    are merged, oversubscribed `(part, dimension)` slots are detected,
//!    and the losers (stable order: later arrival index evicts first,
//!    earlier arrivals keep their slot) are re-placed. Large loser sets go
//!    through *speculative repair rounds*: the evicted arrivals are
//!    re-scored concurrently in arrival-order chunks against the merged
//!    post-eviction ledger, their placements re-merged in chunk order and
//!    re-checked, iterating towards a fixpoint under a bounded round
//!    count; a small loser set — or one that survives every speculative
//!    round — falls back to the original serial re-placement loop, whose
//!    never-evict-twice rule guarantees termination;
//! 5. **commit** — assignments land in the [`PartitionStore`]
//!    (`push_assignment` / `assign_slot` / `push_tombstone`) and the
//!    deferred ledger settles against the now-final parts;
//! 6. **refine** — compaction, the drift check and (when triggered) the
//!    rebalance + warm-started pairwise GD pass, unchanged.
//!
//! Stages 3–4 replace the per-vertex serial placement loop that used to be
//! the last serial stretch of the hot path. The split is the classic
//! speculate-then-repair design for parallel streaming placement (LDG-style
//! greedy placement parallelizes well when capacity conflicts are repaired
//! after the fact); determinism is **by construction**, not by locking:
//! every input to every decision — the snapshot, the chunk boundaries, the
//! merged reservations, the eviction order — is a pure function of the
//! engine state and the batch.

use crate::dynamic::DynamicGraph;
use crate::placement::{LdgPlacer, ReservationLedger, ReservedView};
use crate::store::{LoadSnapshot, PartitionStore};
use crate::TOMBSTONE;
use mdbgp_core::parallel;
use mdbgp_graph::VertexId;
use std::collections::HashMap;

/// Arrivals per speculative chunk. Fixed (never derived from the thread
/// count) so that chunk-local decisions are identical whether one worker
/// processes every chunk or sixteen steal them; small enough that a
/// moderate batch still fans out, large enough that a chunk amortizes its
/// reservation ledger.
pub const SPECULATIVE_CHUNK: usize = 128;

/// Loser sets at or below this size are re-placed serially: a handful of
/// evictions costs less to walk in order than to fan out, and the serial
/// loop's never-evict-twice rule is also what guarantees the repair
/// fixpoint terminates.
pub const REPAIR_SERIAL_THRESHOLD: usize = 32;

/// Upper bound on speculative repair rounds per batch. Speculative rounds
/// never mark an arrival as finally repaired (a speculative re-placement
/// can itself oversubscribe a slot and be evicted again), so the round
/// count — not a per-arrival rule — bounds the concurrent phase; once
/// exhausted, the serial fallback finishes the job.
pub const MAX_SPEC_ROUNDS: usize = 8;

/// Wall-clock milliseconds of each ingest stage, derived per batch from
/// the span tree in [`crate::BatchReport::spans`] via
/// [`crate::BatchReport::timings`] so a perf regression localizes to a
/// stage instead of disappearing into one ingest total. A *view* over the
/// spans — not independently measured — so the flat numbers and the tree
/// can never drift apart. Span trees (and therefore these timings) are
/// excluded from `BatchReport` equality — two semantically identical
/// batches never share wall-clocks.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    pub validate_ms: f64,
    pub split_ms: f64,
    pub place_ms: f64,
    pub repair_ms: f64,
    pub commit_ms: f64,
    pub refine_ms: f64,
}

impl StageTimings {
    /// Total ingest wall-clock across the stages.
    pub fn total_ms(&self) -> f64 {
        self.validate_ms
            + self.split_ms
            + self.place_ms
            + self.repair_ms
            + self.commit_ms
            + self.refine_ms
    }

    /// Projects a per-batch ingest span tree (root `"ingest"`, one child
    /// per stage) onto the flat stage totals. A stage with no span — e.g.
    /// `refine` on a batch that didn't trigger — reads 0.
    pub fn from_spans(root: &mdbgp_obs::SpanNode) -> Self {
        Self {
            validate_ms: root.child_ms("validate"),
            split_ms: root.child_ms("split"),
            place_ms: root.child_ms("place"),
            repair_ms: root.child_ms("repair"),
            commit_ms: root.child_ms("commit"),
            refine_ms: root.child_ms("refine"),
        }
    }
}

/// One arriving vertex between the split and commit stages.
#[derive(Clone, Debug)]
pub(crate) struct PendingArrival {
    /// Engine vertex id — recycled off the free list or extending the id
    /// space; already live in the graph, not yet in the store.
    pub id: VertexId,
    /// Weight row at arrival time — what placement scores with. Weight
    /// drift later in the same batch is committed with the final row.
    pub row: Vec<f64>,
    /// Removed again later in the same batch: never placed; when the id
    /// was fresh its slot commits as a tombstone to keep store and graph
    /// id spaces aligned.
    pub dead: bool,
}

/// A store-side effect the split stage cannot apply yet because it touches
/// an arrival that has no assignment until commit. Settled against the
/// final parts; an add and its matching remove classify identically, so
/// cancelled pairs net to zero.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DeferredEffect {
    EdgeAdded(VertexId, VertexId),
    EdgeRemoved(VertexId, VertexId),
}

/// Everything the split stage hands to placement, repair and commit.
#[derive(Default)]
pub(crate) struct SplitOutcome {
    /// Arrivals in batch order (which is also id-assignment order).
    pub arrivals: Vec<PendingArrival>,
    /// Vertex id → index into `arrivals`, live pending arrivals only.
    pub arrival_of: HashMap<VertexId, usize>,
    /// Store effects deferred to commit.
    pub ledger: Vec<DeferredEffect>,
    pub vertices_added: usize,
    pub vertices_removed: usize,
    pub edges_added: usize,
    pub edges_removed: usize,
    pub weight_updates: usize,
}

/// Counts the placed neighbours of pending arrival `v` into `counts`:
/// pre-batch assignments from the store, co-arrival assignments through
/// `arrival_part` (which stage-dependently exposes chunk-local or global
/// speculative placements).
fn count_neighbors(
    counts: &mut [usize],
    graph: &DynamicGraph,
    store: &PartitionStore,
    split: &SplitOutcome,
    v: VertexId,
    arrival_part: impl Fn(usize) -> Option<u32>,
) {
    counts.iter_mut().for_each(|c| *c = 0);
    for u in graph.neighbors(v) {
        // Pending arrivals first: a recycled arrival id would otherwise
        // read its slot's stale TOMBSTONE out of the store.
        if let Some(&ai) = split.arrival_of.get(&u) {
            if let Some(p) = arrival_part(ai) {
                counts[p as usize] += 1;
            }
        } else if (u as usize) < store.num_vertices() {
            let p = store.shard_of(u);
            if p != TOMBSTONE {
                counts[p as usize] += 1;
            }
        }
    }
}

/// Stage 3 — speculative parallel placement. Chunks of arrivals are placed
/// concurrently against the frozen `snapshot` (pre-fetched by the engine —
/// under the snapshot cache it is typically the exact allocation the last
/// published [`crate::ReadView`] carries); each chunk reserves capacity
/// locally and sees the speculative parts of its *own* earlier arrivals
/// (chunk-local affinity), never another chunk's. Returns the chosen part
/// per arrival ([`TOMBSTONE`] for one removed in its own batch), the
/// merged reservations of every chunk (the repair stage's starting global
/// view), the snapshot, and the batch-wide per-dimension capacities
/// `(1 + ε) · (frozen total + arriving weight) / k` that stages 3–4 share.
pub(crate) fn speculative_place(
    graph: &DynamicGraph,
    store: &PartitionStore,
    split: &SplitOutcome,
    snapshot: LoadSnapshot,
    epsilon: f64,
    threads: usize,
) -> (Vec<u32>, ReservationLedger, LoadSnapshot, Vec<f64>) {
    let k = store.num_parts();
    let dims = graph.weights().dims();
    let mut caps: Vec<f64> = (0..dims).map(|j| snapshot.total(j)).collect();
    for a in split.arrivals.iter().filter(|a| !a.dead) {
        for (j, &w) in a.row.iter().enumerate() {
            caps[j] += w;
        }
    }
    for cap in &mut caps {
        *cap = (1.0 + epsilon) * *cap / k as f64;
    }

    let bounds = parallel::fixed_boundaries(split.arrivals.len(), SPECULATIVE_CHUNK);
    let ranges: Vec<std::ops::Range<usize>> = bounds.windows(2).map(|w| w[0]..w[1]).collect();
    // A single chunk cannot use chunk-level parallelism; hand the threads
    // to the per-part scoring sweep instead (it engages for large k).
    let placer = LdgPlacer::new(epsilon).with_threads(if ranges.len() <= 1 { threads } else { 1 });
    let chunk_results = parallel::par_map(&ranges, threads, |_, range| {
        let mut ledger = ReservationLedger::new(k, dims);
        let mut local = vec![TOMBSTONE; range.len()];
        let mut counts = vec![0usize; k];
        for (off, i) in range.clone().enumerate() {
            let arrival = &split.arrivals[i];
            if arrival.dead {
                continue;
            }
            count_neighbors(&mut counts, graph, store, split, arrival.id, |ai| {
                // Only this chunk's earlier arrivals are visible.
                if (range.start..i).contains(&ai) {
                    Some(local[ai - range.start]).filter(|&p| p != TOMBSTONE)
                } else {
                    None
                }
            });
            let view = ReservedView {
                snapshot: &snapshot,
                ledger: &ledger,
            };
            let part = placer.place_with(k, &view, &caps, &counts, &arrival.row);
            ledger.reserve(part, &arrival.row);
            local[off] = part;
        }
        (local, ledger)
    });
    let mut parts = Vec::with_capacity(split.arrivals.len());
    let mut merged = ReservationLedger::new(k, dims);
    for (local, ledger) in chunk_results {
        parts.extend(local);
        merged.merge(&ledger);
    }
    (parts, merged, snapshot, caps)
}

/// Stage 4 — deterministic conflict repair. Merges every chunk's
/// reservations, finds `(part, dimension)` slots the speculative stage
/// oversubscribed, and re-places the losers: per oversubscribed part the
/// arrivals are walked in arrival order and the earliest prefix that fits
/// under the capacity keeps its slot — so which arrivals lose never
/// depends on chunk scheduling, only on the batch.
///
/// Loser sets larger than [`REPAIR_SERIAL_THRESHOLD`] are re-placed in
/// *speculative rounds* (at most [`MAX_SPEC_ROUNDS`] per batch): the
/// evicted arrivals — already back in arrival order — are chunked with the
/// same batch-derived [`SPECULATIVE_CHUNK`] boundaries as stage 3 and
/// re-scored concurrently, each chunk against a clone of the post-eviction
/// global ledger, seeing every kept placement plus its *own* chunk's
/// earlier re-placements; the chunk placements are then replayed onto the
/// global ledger in arrival order and the loop re-detects. Every input to
/// a speculative decision is a pure function of the batch, so the rounds
/// are identical at any thread count. Speculative re-placements stay
/// evictable (two chunks can re-oversubscribe a slot they could not see
/// each other filling), which is why the round count is bounded.
///
/// Small loser sets — and whatever survives the bounded rounds — go
/// through the serial fallback: losers are re-placed one at a time in
/// arrival order with full knowledge of every prior decision; a loser
/// that fits nowhere falls back to the least-loaded part exactly like
/// serial LDG overflow, and is never evicted again, which bounds the
/// loop. Returns `(evictions, repair passes, speculative rounds)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conflict_repair(
    graph: &DynamicGraph,
    store: &PartitionStore,
    split: &SplitOutcome,
    mut ledger: ReservationLedger,
    snapshot: &LoadSnapshot,
    caps: &[f64],
    parts: &mut [u32],
    epsilon: f64,
    threads: usize,
) -> (usize, usize, usize) {
    let k = store.num_parts();
    let dims = snapshot.dims();
    // Tolerance: strictly looser than the placement feasibility check
    // (`fullness <= 1`), so a placement the scorer accepted is never
    // re-detected as a conflict and the loop cannot flip-flop.
    let fits = |load: f64, j: usize| load <= caps[j] * (1.0 + 1e-12);
    let placer = LdgPlacer::new(epsilon).with_threads(threads);
    let mut repaired = vec![false; split.arrivals.len()];
    let mut conflicts = 0usize;
    let mut passes = 0usize;
    let mut spec_rounds = 0usize;
    loop {
        // Detect, then evict the stable losers of each oversubscribed part.
        let mut by_part: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, a) in split.arrivals.iter().enumerate() {
            if !a.dead && parts[i] != TOMBSTONE {
                by_part[parts[i] as usize].push(i); // arrival order
            }
        }
        let mut evicted: Vec<usize> = Vec::new();
        let mut kept = vec![0.0f64; dims];
        for p in 0..k as u32 {
            let over = (0..dims).any(|j| !fits(snapshot.load(p, j) + ledger.reserved(p, j), j));
            if !over {
                continue;
            }
            kept.iter_mut().for_each(|l| *l = 0.0);
            for &i in &by_part[p as usize] {
                let row = &split.arrivals[i].row;
                if repaired[i] {
                    // Already re-placed once (possibly via the overflow
                    // fallback); it keeps its slot unconditionally.
                    for (j, &w) in row.iter().enumerate() {
                        kept[j] += w;
                    }
                    continue;
                }
                let ok = (0..dims).all(|j| fits(snapshot.load(p, j) + kept[j] + row[j], j));
                if ok {
                    for (j, &w) in row.iter().enumerate() {
                        kept[j] += w;
                    }
                } else {
                    evicted.push(i);
                }
            }
        }
        if evicted.is_empty() {
            break;
        }
        passes += 1;
        conflicts += evicted.len();
        evicted.sort_unstable(); // across parts, back into arrival order
        for &i in &evicted {
            ledger.release(parts[i], &split.arrivals[i].row);
            parts[i] = TOMBSTONE;
        }
        if evicted.len() > REPAIR_SERIAL_THRESHOLD && spec_rounds < MAX_SPEC_ROUNDS {
            // Speculative round: re-score the losers concurrently in
            // arrival-order chunks, then replay in arrival order.
            spec_rounds += 1;
            let bounds = parallel::fixed_boundaries(evicted.len(), SPECULATIVE_CHUNK);
            let ranges: Vec<std::ops::Range<usize>> =
                bounds.windows(2).map(|w| w[0]..w[1]).collect();
            let chunk_placer =
                LdgPlacer::new(epsilon).with_threads(if ranges.len() <= 1 { threads } else { 1 });
            let evicted_ref = &evicted;
            let parts_view: &[u32] = parts;
            let base_ledger = &ledger;
            let chunk_results = parallel::par_map(&ranges, threads, |_, range| {
                let mut chunk_ledger = base_ledger.clone();
                let mut local = vec![TOMBSTONE; range.len()];
                let mut counts = vec![0usize; k];
                for (off, e) in range.clone().enumerate() {
                    let i = evicted_ref[e];
                    let arrival = &split.arrivals[i];
                    count_neighbors(&mut counts, graph, store, split, arrival.id, |ai| {
                        // Kept placements plus this chunk's own earlier
                        // re-placements; other chunks' speculative choices
                        // are invisible, so the round never depends on
                        // chunk scheduling. `evicted` is sorted, so the
                        // chunk's earlier losers are searchable.
                        if let Ok(prior) = evicted_ref[range.start..e].binary_search(&ai) {
                            Some(local[prior]).filter(|&p| p != TOMBSTONE)
                        } else {
                            Some(parts_view[ai]).filter(|&p| p != TOMBSTONE)
                        }
                    });
                    let view = ReservedView {
                        snapshot,
                        ledger: &chunk_ledger,
                    };
                    let part = chunk_placer.place_with(k, &view, caps, &counts, &arrival.row);
                    chunk_ledger.reserve(part, &arrival.row);
                    local[off] = part;
                }
                local
            });
            for (local, range) in chunk_results.into_iter().zip(ranges) {
                for (off, e) in range.enumerate() {
                    let i = evicted[e];
                    let part = local[off];
                    ledger.reserve(part, &split.arrivals[i].row);
                    parts[i] = part;
                    // Not `repaired`: a speculative re-placement may lose
                    // again next round.
                }
            }
            continue;
        }
        let mut counts = vec![0usize; k];
        for &i in &evicted {
            let arrival = &split.arrivals[i];
            count_neighbors(&mut counts, graph, store, split, arrival.id, |ai| {
                // Full knowledge: every kept or already re-placed arrival.
                Some(parts[ai]).filter(|&p| p != TOMBSTONE)
            });
            let view = ReservedView {
                snapshot,
                ledger: &ledger,
            };
            let part = placer.place_with(k, &view, caps, &counts, &arrival.row);
            ledger.reserve(part, &arrival.row);
            parts[i] = part;
            repaired[i] = true;
        }
    }
    (conflicts, passes, spec_rounds)
}
