//! Synthetic proxy datasets.
//!
//! The paper evaluates on SNAP graphs (LiveJournal, Orkut, Twitter,
//! Friendster, sx-stackoverflow) and Facebook friendship subgraphs up to
//! 800B edges. The proxies below are LFR-lite community graphs
//! ([`mdbgp_graph::gen::community_graph`]) whose knobs are tuned per graph:
//!
//! | proxy | mimics | key property |
//! |---|---|---|
//! | `lj`  | LiveJournal (4.8M/43M)   | strong communities, moderate skew |
//! | `orkut` | Orkut (3.1M/117M)      | dense, strong communities |
//! | `twitter` | Twitter (41M/1.2B)   | extreme degree skew, weak communities |
//! | `friendster` | Friendster (65M/1.8B) | large, moderate communities |
//! | `stackoverflow` | sx-stackoverflow (2.6M/28M) | Q&A graph: skewed, weaker communities |
//! | `fb(x)` | FB-3B/80B/400B         | sweepable size family |
//!
//! Sizes are scaled down ~100× so every experiment runs on a laptop in
//! seconds-to-minutes; the *relationships* between algorithms (who wins,
//! where balance breaks) are what the proxies preserve — see DESIGN.md.

use mdbgp_graph::gen::{community_graph, CommunityGraph, CommunityGraphConfig};
use mdbgp_graph::{Graph, VertexWeights, WeightKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named proxy graph.
pub struct Dataset {
    pub name: &'static str,
    pub graph: Graph,
    /// Planted community labels (ground truth of the generator).
    pub community: Vec<u32>,
}

impl Dataset {
    fn from_community(name: &'static str, cg: CommunityGraph) -> Self {
        Self {
            name,
            graph: cg.graph,
            community: cg.community,
        }
    }

    /// The standard two balance dimensions (vertices + degrees).
    pub fn vertex_edge_weights(&self) -> VertexWeights {
        VertexWeights::vertex_edge(&self.graph)
    }

    /// `d`-dimensional weights used by the Table 3 experiments:
    /// vertices, degrees, sum of neighbour degrees, PageRank.
    pub fn weights_d(&self, d: usize) -> VertexWeights {
        let kinds = [
            WeightKind::Unit,
            WeightKind::Degree,
            WeightKind::NeighborDegreeSum,
            WeightKind::pagerank_default(),
        ];
        assert!((1..=4).contains(&d));
        VertexWeights::build(&self.graph, &kinds[..d])
    }
}

fn make(
    name: &'static str,
    n: usize,
    mean_degree: f64,
    degree_exponent: f64,
    mixing: f64,
    density_spread: f64,
    seed: u64,
) -> Dataset {
    let cfg = CommunityGraphConfig {
        num_vertices: n,
        mean_degree,
        degree_exponent,
        max_degree: (n / 12).max(32),
        mixing,
        community_exponent: 2.0,
        min_community: (n / 250).max(8),
        max_community: (n / 8).max(16),
        density_spread,
    };
    Dataset::from_community(
        name,
        community_graph(&cfg, &mut StdRng::seed_from_u64(seed)),
    )
}

/// LiveJournal proxy: strong communities, moderate skew.
pub fn lj() -> Dataset {
    make("LiveJournal*", 30_000, 17.0, 2.5, 0.10, 2.5, 0xA001)
}

/// Orkut proxy: denser, strong communities.
pub fn orkut() -> Dataset {
    make("orkut*", 20_000, 38.0, 2.4, 0.13, 2.0, 0xA002)
}

/// Twitter proxy: hub-dominated, weak community structure — the graph on
/// which one-dimensional balancing falls apart (Figure 4).
pub fn twitter() -> Dataset {
    make("Twitter*", 25_000, 30.0, 1.95, 0.35, 4.0, 0xA003)
}

/// Friendster proxy.
pub fn friendster() -> Dataset {
    make("Friendster*", 40_000, 24.0, 2.4, 0.18, 2.5, 0xA004)
}

/// sx-stackoverflow proxy (Appendix C.2): not a social network — weaker
/// communities, strong skew.
pub fn stackoverflow() -> Dataset {
    make("sx-stackoverflow*", 26_000, 21.0, 2.1, 0.30, 3.0, 0xA005)
}

/// Facebook friendship-graph family; `scale` 0/1/2 mimic FB-3B/80B/400B.
pub fn fb(scale: usize) -> Dataset {
    match scale {
        0 => make("FB-3B*", 30_000, 18.0, 2.4, 0.14, 6.0, 0xB000),
        1 => make("FB-80B*", 60_000, 22.0, 2.4, 0.15, 6.0, 0xB001),
        2 => make("FB-400B*", 120_000, 26.0, 2.4, 0.16, 6.0, 0xB002),
        _ => panic!("fb scale must be 0..=2"),
    }
}

/// Size sweep for the Figure 11 scalability experiment: roughly doubling
/// edge counts with fixed structure.
pub fn fb_sweep() -> Vec<Dataset> {
    let sizes = [20_000usize, 40_000, 80_000, 160_000, 320_000];
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let names = [
                "FB-sweep-1",
                "FB-sweep-2",
                "FB-sweep-3",
                "FB-sweep-4",
                "FB-sweep-5",
            ];
            make(names[i], n, 16.0, 2.4, 0.15, 3.0, 0xC000 + i as u64)
        })
        .collect()
}

/// The three public proxies of Figures 4–5.
pub fn public_graphs() -> Vec<Dataset> {
    vec![lj(), twitter(), friendster()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::analytics::degree_stats;

    #[test]
    fn proxies_have_requested_sizes() {
        let d = lj();
        assert_eq!(d.graph.num_vertices(), 30_000);
        let mean = d.graph.mean_degree();
        assert!((mean - 17.0).abs() < 5.0, "mean degree {mean}");
    }

    #[test]
    fn twitter_proxy_is_most_skewed() {
        let t = degree_stats(&twitter().graph).top1_percent_share;
        let l = degree_stats(&lj().graph).top1_percent_share;
        assert!(t > l, "twitter* skew {t} must exceed lj* skew {l}");
    }

    #[test]
    fn fb_family_grows() {
        let a = fb(0).graph.num_edges();
        let b = fb(1).graph.num_edges();
        assert!(b > a * 3 / 2);
    }

    #[test]
    fn weights_d_dimensions() {
        let d = lj();
        for dim in 1..=4 {
            assert_eq!(d.weights_d(dim).dims(), dim);
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(lj().graph, lj().graph);
    }
}
