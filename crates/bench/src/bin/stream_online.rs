//! `stream_online` — wall-clock comparison of incremental maintenance
//! (`mdbgp-stream`) against re-running the offline GD partitioner from
//! scratch after every update batch.
//!
//! Scenario: a community graph bootstrapped at `--n` vertices receives
//! `--batches` update batches, each bringing `--arrivals` new vertices
//! (with their backward edges), `--extra-edges` fresh edges between
//! existing vertices, correlated activity drift on `--drift` vertices
//! of one shard (a hot-shard spike, so the refinement machinery actually
//! runs), and — with `--churn F` — mixed deletions: `F · extra-edges`
//! random live edges and `F · arrivals` random live vertices leave per
//! batch, exercising the tombstone/purge path (the harness tracks the
//! id remaps purging compactions report). After each batch both
//! maintenance strategies must produce an ε-balanced partition:
//!
//! * **incremental** — `StreamingPartitioner::ingest` (greedy placement +
//!   drift-triggered warm-started refinement),
//! * **scratch** — `GdPartitioner::partition` on the full current graph.
//!
//! The run fails (non-zero exit) if the incremental path ever violates ε.
//! The headline number is the cumulative speedup; the acceptance bar for
//! this subsystem is ≥ 5× add-only and ≥ 2× under churn (deletions refine
//! and purge far more often).
//!
//! CI hooks: `--threads T` sizes the worker pool of the incremental path,
//! `--json-out FILE` dumps the per-batch wall-clock / cut / imbalance
//! record — including per-pipeline-stage totals
//! (validate/split/place/repair/commit/refine) and the placement-conflict
//! / repair-pass / rebalance-full-scan counters — and
//! `--check-against BASELINE` gates the run against a committed record
//! (`BENCH_stream.json`), failing on ε violations, on a machine-normalized
//! wall-clock regression beyond `--max-regress` (default 0.30), or on a
//! `rebalance_full_scans` increase over the baseline — see
//! [`mdbgp_bench::perfgate`]. `--snapshot-every N` adds kill-and-resume
//! cycles: every N batches the engine is serialized, discarded and
//! restored from the bytes, the stream continuing on the restored
//! instance; save/restore wall-clock lands in the perf record (v3 fields)
//! so `--check-against BENCH_stream_snapshot.json` bounds warm-restart
//! overhead alongside the usual gates. `--arrivals-heavy true` flips the defaults
//! to a placement-bound preset (3000 arrivals, 100 extra edges, drift 30)
//! whose ingest wall-clock is carried by the speculative placement +
//! conflict repair stages — the leg the parallel-placement scaling check
//! runs on (`BENCH_stream_place.json`).

use mdbgp_bench::churn::{predict_arrival_ids, queue_removals, verify_arrival_ids, IdTracker};
use mdbgp_bench::perfgate::{
    check_parallel_speedup, check_regression, BatchPerf, PerfQuantiles, PerfRecord,
};
use mdbgp_bench::policies::timed;
use mdbgp_bench::table::Table;
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::{gen, InducedSubgraph, Partitioner, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    n: usize,
    batches: usize,
    arrivals: usize,
    extra_edges: usize,
    drift: usize,
    churn: f64,
    k: usize,
    eps: f64,
    seed: u64,
    threads: usize,
    snapshot_every: usize,
    json_out: Option<String>,
    metrics_out: Option<String>,
    metrics_det_out: Option<String>,
    check_against: Option<String>,
    max_regress: f64,
    expect_speedup_over: Option<String>,
    min_par_speedup: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut map = HashMap::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    // `--arrivals-heavy true`: a placement-bound preset — large arrival
    // batches, few extra edges, low drift — so the speculative placement
    // stage dominates the ingest wall-clock and the CI scaling check
    // measures *it*, not refinement. Individual flags still override.
    let arrivals_heavy = match map.get("arrivals-heavy").map(String::as_str) {
        None => false,
        Some("true") | Some("1") => true,
        Some("false") | Some("0") => false,
        Some(v) => return Err(format!("--arrivals-heavy: expected true/false, got '{v}'")),
    };
    let (d_arrivals, d_extra, d_drift) = if arrivals_heavy {
        (3000, 100, 30)
    } else {
        (500, 500, 150)
    };
    let num = |key: &str, default: usize| -> Result<usize, String> {
        map.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'"))
        })
    };
    Ok(Args {
        n: num("n", 50_000)?,
        batches: num("batches", 10)?,
        arrivals: num("arrivals", d_arrivals)?,
        extra_edges: num("extra-edges", d_extra)?,
        // Drift is concentrated on one shard (see the batch assembly), so
        // the default 150 updates/batch already trigger refinement on
        // roughly half the batches — enough to exercise the path without
        // drowning the placement numbers.
        drift: num("drift", d_drift)?,
        churn: match map.get("churn").map_or(Ok(0.0), |v| {
            v.parse()
                .map_err(|_| format!("--churn: cannot parse '{v}'"))
        })? {
            c if (0.0..1.0).contains(&c) => c,
            c => return Err(format!("--churn must be in [0, 1), got {c}")),
        },
        k: num("k", 8)?,
        eps: map.get("eps").map_or(Ok(0.05), |v| {
            v.parse().map_err(|_| format!("--eps: cannot parse '{v}'"))
        })?,
        seed: num("seed", 42)? as u64,
        threads: match num("threads", 1)? {
            0 => return Err("--threads must be positive".into()),
            t => t,
        },
        // Every N batches: save a snapshot, kill the engine, restore from
        // the bytes and continue — measuring save/restore wall-clock into
        // the perf record so the gate can bound warm-restart overhead.
        snapshot_every: num("snapshot-every", 0)?,
        json_out: map.get("json-out").cloned(),
        // Full metrics dump (counters + histograms + spans + journal) and
        // the deterministic subset (identical across thread counts; CI
        // diffs the serial and parallel legs' files byte-for-byte).
        metrics_out: map.get("metrics-out").cloned(),
        metrics_det_out: map.get("metrics-det-out").cloned(),
        check_against: map.get("check-against").cloned(),
        max_regress: map.get("max-regress").map_or(Ok(0.30), |v| {
            v.parse()
                .map_err(|_| format!("--max-regress: cannot parse '{v}'"))
        })?,
        expect_speedup_over: map.get("expect-speedup-over").cloned(),
        // Conservative default: the CI runners have few cores and the
        // refinement rounds bound the useful parallelism, so the bar
        // catches a serialized parallel path without flaking on a busy
        // runner. Reproduce the full speedup locally on a many-core box.
        min_par_speedup: map.get("min-par-speedup").map_or(Ok(1.2), |v| {
            v.parse()
                .map_err(|_| format!("--min-par-speedup: cannot parse '{v}'"))
        })?,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: stream_online [--n N] [--batches B] [--arrivals A] \
                 [--extra-edges E] [--drift D] [--churn F] [--arrivals-heavy true] [--k K] \
                 [--eps EPS] [--seed S] [--threads T] [--snapshot-every N] [--json-out FILE] \
                 [--metrics-out FILE] [--metrics-det-out FILE] \
                 [--check-against BASELINE] [--max-regress FRAC] [--expect-speedup-over FILE] \
                 [--min-par-speedup X]"
            );
            return ExitCode::FAILURE;
        }
    };
    let total_n = args.n + args.batches * args.arrivals;
    println!(
        "stream_online: n={} (+{} arrivals/batch x {} batches), k={}, eps={}, threads={}, \
         churn={}",
        args.n, args.arrivals, args.batches, args.k, args.eps, args.threads, args.churn
    );

    // Full history graph; the prefix is the bootstrap snapshot.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let cg = gen::community_graph(&gen::CommunityGraphConfig::social(total_n), &mut rng);
    let full = cg.graph;
    let prefix: Vec<u32> = (0..args.n as u32).collect();
    let boot = InducedSubgraph::extract(&full, &prefix);
    let boot_weights = VertexWeights::vertex_edge(&boot.graph);

    let mut cfg = StreamConfig::new(args.k, args.eps).with_threads(args.threads);
    cfg.gd = GdConfig {
        iterations: 60,
        // The scratch reference must use the same thread count as the
        // incremental path, or the normalized wall-clock gate compares a
        // parallel numerator against a serial denominator and goes soft
        // exactly on the multi-threaded CI leg.
        threads: args.threads,
        ..GdConfig::with_epsilon(args.eps)
    };
    cfg.seed = args.seed;
    let gd_cfg = cfg.gd.clone();

    let (sp, boot_time) = timed(|| {
        StreamingPartitioner::bootstrap(boot.graph.clone(), boot_weights, cfg)
            .expect("bootstrap partition failed")
    });
    let mut sp = sp;
    println!(
        "bootstrap: {:.2}s, locality {:.1}%, imbalance {:.2}%\n",
        boot_time.as_secs_f64(),
        sp.store().edge_locality() * 100.0,
        sp.max_imbalance() * 100.0
    );

    let mut table = Table::new([
        "batch",
        "inc ms",
        "scratch ms",
        "speedup",
        "inc imb %",
        "inc loc %",
        "scratch loc %",
    ]);
    let mut inc_total = Duration::ZERO;
    let mut scratch_total = Duration::ZERO;
    // validate / split / place / repair / commit / refine, summed (ms).
    let mut stage_totals = [0.0f64; 6];
    let mut eps_ok = true;
    let mut arrived = args.n as u32;
    // Original-id bookkeeping: churn remaps engine ids at every purge, so
    // the replay addresses the engine through this translation.
    let mut tracker = IdTracker::identity(args.n);
    let mut batch_perf: Vec<BatchPerf> = Vec::with_capacity(args.batches);
    let mut snap_save = Duration::ZERO;
    let mut snap_restore = Duration::ZERO;
    let mut snapshots = 0usize;
    let mut snap_bytes = 0usize;

    for batch_no in 1..=args.batches {
        // Assemble the batch: arrivals with backward edges, extra edges,
        // activity drift, then (under --churn) removals.
        let mut batch = UpdateBatch::new();
        let end = arrived + args.arrivals as u32;
        // Under churn the engine recycles tombstoned ids, so arrival ids
        // are predicted by mirroring its free list (needed for same-batch
        // co-arrival edges) and verified against the report afterwards.
        let predicted = predict_arrival_ids(sp.graph(), args.arrivals);
        for v in arrived..end {
            let backward: Vec<u32> = full
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| u < v)
                .filter_map(|u| tracker.current(u))
                .collect();
            let degree_weight = backward.len().max(1) as f64;
            batch.add_vertex(vec![1.0, degree_weight], backward);
            tracker.push(predicted[(v - arrived) as usize]);
        }
        for _ in 0..args.extra_edges {
            let u = tracker.current(rng.gen_range(0..arrived));
            let v = tracker.current(rng.gen_range(0..arrived));
            if let (Some(u), Some(v)) = (u, v) {
                batch.add_edge(u, v);
            }
        }
        // Correlated activity spike: drift concentrates on shard 0 so
        // balance actually erodes and the refinement path (heap rebalance
        // + parallel pairwise GD) is exercised — uniform drift cancels out
        // in expectation and never crosses the trigger band, gating
        // nothing. Members are collected up front: rejection sampling
        // would hang, not fail, should the shard ever end up empty.
        if args.drift > 0 {
            let shard0: Vec<u32> = (0..arrived)
                .filter_map(|o| tracker.current(o))
                .filter(|&c| sp.shard_of(c) == 0)
                .collect();
            if shard0.is_empty() {
                eprintln!("FAIL: shard 0 is empty; cannot apply the drift spike");
                return ExitCode::FAILURE;
            }
            for _ in 0..args.drift {
                let v = shard0[rng.gen_range(0..shard0.len())];
                batch.set_weight(v, 0, rng.gen_range(1.5..3.0));
            }
        }
        if args.churn > 0.0 {
            queue_removals(
                &mut batch,
                sp.graph(),
                &mut tracker,
                &mut rng,
                (args.extra_edges as f64 * args.churn) as usize,
                (args.arrivals as f64 * args.churn) as usize,
            );
        }
        arrived = end;

        // Incremental path.
        let (report, inc_time) = timed(|| sp.ingest(&batch).expect("ingest failed"));
        inc_total += inc_time;
        let timings = report.timings();
        stage_totals = [
            stage_totals[0] + timings.validate_ms,
            stage_totals[1] + timings.split_ms,
            stage_totals[2] + timings.place_ms,
            stage_totals[3] + timings.repair_ms,
            stage_totals[4] + timings.commit_ms,
            stage_totals[5] + timings.refine_ms,
        ];
        if report.max_imbalance > args.eps + 1e-9 {
            eps_ok = false;
        }
        if let Some(remap) = &report.remap {
            tracker.apply_remap(remap);
        }
        // The predictions fed the tracker before ingest; the report's
        // arrival_ids are the authority (already post-remap).
        if let Err(e) = verify_arrival_ids(&tracker, end, &report.arrival_ids) {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }

        // Kill-and-resume cycle: serialize the engine, throw it away,
        // restore from the bytes and continue the stream on the restored
        // instance — so every later batch (and ε check) runs on a
        // warm-restarted engine, proving the round trip mid-stream. The
        // id tracker needs no adjustment: a snapshot preserves the id
        // space (and epoch) exactly.
        if args.snapshot_every > 0 && batch_no % args.snapshot_every == 0 {
            let (bytes, save_time) = timed(|| {
                let mut buf = Vec::new();
                sp.save_snapshot(&mut buf).expect("snapshot save failed");
                buf
            });
            let (restored, restore_time) =
                timed(|| StreamingPartitioner::restore(&bytes[..]).expect("restore failed"));
            if restored.store().as_slice() != sp.store().as_slice() {
                eprintln!("FAIL: restored engine's assignment diverged from the saver");
                return ExitCode::FAILURE;
            }
            snap_bytes = bytes.len();
            snap_save += save_time;
            snap_restore += restore_time;
            snapshots += 1;
            sp = restored; // the old engine is dead; long live the engine
        }

        // Scratch path: full GD on the same post-batch live graph/weights
        // (snapshot construction is not charged to the solver).
        let (snapshot, weights, _) = sp.graph().live_snapshot();
        let (scratch, scratch_time) = timed(|| {
            GdPartitioner::new(gd_cfg.clone())
                .partition(&snapshot, &weights, args.k, args.seed + batch_no as u64)
                .expect("scratch partition failed")
        });
        scratch_total += scratch_time;

        batch_perf.push(BatchPerf {
            batch: batch_no,
            inc_ms: inc_time.as_secs_f64() * 1e3,
            scratch_ms: scratch_time.as_secs_f64() * 1e3,
            cut_edges: sp.store().cut_edges(),
            imbalance: report.max_imbalance,
            locality: report.edge_locality,
        });

        table.row([
            format!("{batch_no}"),
            format!("{:.1}", inc_time.as_secs_f64() * 1e3),
            format!("{:.1}", scratch_time.as_secs_f64() * 1e3),
            format!(
                "{:.1}x",
                scratch_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9)
            ),
            format!("{:.2}", report.max_imbalance * 100.0),
            format!("{:.1}", report.edge_locality * 100.0),
            format!("{:.1}", scratch.edge_locality(&snapshot) * 100.0),
        ]);
    }
    println!("{table}");

    let speedup = scratch_total.as_secs_f64() / inc_total.as_secs_f64().max(1e-9);
    let gd_full = sp.metrics().counter("core.gd.grad_full_recomputes") as usize;
    let gd_delta = sp.metrics().counter("core.gd.grad_delta_iters") as usize;
    let t = sp.telemetry();
    println!(
        "totals: incremental {:.2}s vs scratch {:.2}s -> {speedup:.1}x speedup",
        inc_total.as_secs_f64(),
        scratch_total.as_secs_f64()
    );
    println!(
        "telemetry: {} placed, {} removed, +{} -{} edges, {} weight updates, \
         {} compactions ({} remaps), {} refinements ({} rebalance + {} gd moves), \
         {} placement conflicts ({} repair passes), {} rebalance full scans",
        t.vertices_placed,
        t.vertices_removed,
        t.edges_added,
        t.edges_removed,
        t.weight_updates,
        t.compactions,
        t.remaps,
        t.refinements,
        t.rebalance_moves,
        t.refine_moves,
        t.placement_conflicts,
        t.repair_passes,
        t.rebalance_full_scans
    );
    println!(
        "stages (ms): validate {:.1}, split {:.1}, place {:.1}, repair {:.1}, commit {:.1}, \
         refine {:.1}",
        stage_totals[0],
        stage_totals[1],
        stage_totals[2],
        stage_totals[3],
        stage_totals[4],
        stage_totals[5]
    );
    println!("gd gradients: {gd_full} full recomputes, {gd_delta} delta iterations");
    if snapshots > 0 {
        println!(
            "snapshots: {snapshots} kill-and-resume cycles, save {:.1} ms, restore {:.1} ms \
             ({snap_bytes} bytes last)",
            snap_save.as_secs_f64() * 1e3,
            snap_restore.as_secs_f64() * 1e3
        );
    }

    let record = PerfRecord {
        threads: args.threads,
        churn: args.churn,
        inc_total_ms: inc_total.as_secs_f64() * 1e3,
        scratch_total_ms: scratch_total.as_secs_f64() * 1e3,
        speedup,
        eps_ok,
        final_locality: sp.store().edge_locality(),
        final_imbalance: sp.max_imbalance(),
        validate_total_ms: stage_totals[0],
        split_total_ms: stage_totals[1],
        place_total_ms: stage_totals[2],
        repair_total_ms: stage_totals[3],
        commit_total_ms: stage_totals[4],
        refine_total_ms: stage_totals[5],
        placement_conflicts: Some(t.placement_conflicts),
        repair_passes: Some(t.repair_passes),
        rebalance_full_scans: Some(t.rebalance_full_scans),
        snapshot_save_total_ms: snap_save.as_secs_f64() * 1e3,
        snapshot_restore_total_ms: snap_restore.as_secs_f64() * 1e3,
        snapshots: (snapshots > 0).then_some(snapshots),
        quantiles: {
            // v4: tail quantiles straight from the metrics registry — the
            // per-stage span histograms record microseconds per batch, the
            // iteration histogram counts GD iterations per refine_pair.
            let m = sp.metrics();
            let stage_p99_ms = |name: &str| {
                m.summary(name)
                    .map(|s| s.p99 as f64 / 1000.0)
                    .unwrap_or(0.0)
            };
            let iters = m.summary("core.gd.refine_iterations");
            Some(PerfQuantiles {
                refine_iters_p50: iters.as_ref().map(|s| s.p50 as f64).unwrap_or(0.0),
                refine_iters_p99: iters.as_ref().map(|s| s.p99 as f64).unwrap_or(0.0),
                validate_p99_ms: stage_p99_ms("span.ingest.validate_us"),
                split_p99_ms: stage_p99_ms("span.ingest.split_us"),
                place_p99_ms: stage_p99_ms("span.ingest.place_us"),
                repair_p99_ms: stage_p99_ms("span.ingest.repair_us"),
                commit_p99_ms: stage_p99_ms("span.ingest.commit_us"),
                refine_p99_ms: stage_p99_ms("span.ingest.refine_us"),
            })
        },
        // v5: delta-gradient engagement counters — deterministic for a
        // fixed workload, so baseline diffs show how much of the refine
        // work the sparse diff path absorbed.
        gd_full_recomputes: Some(gd_full),
        gd_delta_iters: Some(gd_delta),
        // v6: serving-side fields belong to stream_serve records only;
        // an ingest-only run has no reader threads to measure.
        lookups_per_sec: None,
        lookup_p99_us: None,
        // v7: stage-parallelism telemetry — the counts are deterministic
        // for a fixed workload, the compaction wall-clock is not (and is
        // therefore never gated).
        split_parallel_ranges: Some(sp.metrics().counter("stream.split.parallel_ranges") as usize),
        repair_spec_rounds: Some(sp.metrics().counter("stream.repair.spec_rounds") as usize),
        compact_parallel_ms: sp.metrics().gauge("stream.compact.parallel_ms"),
        // v8: replication fields belong to stream_replicate records only.
        replay_total_ms: 0.0,
        replay_batches: None,
        log_bytes: None,
        log_rotations: None,
        followers: None,
        batches: batch_perf,
    };
    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, record.to_json()) {
            eprintln!("FAIL: cannot write --json-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote perf record -> {path}");
    }
    if let Some(path) = &args.metrics_out {
        // `.prom`/`.txt` gets the Prometheus text exposition; everything
        // else the line-oriented JSON dump that `metrics_check` validates.
        let dump = if path.ends_with(".prom") || path.ends_with(".txt") {
            sp.metrics().render_text()
        } else {
            sp.metrics().render_json()
        };
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("FAIL: cannot write --metrics-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics dump -> {path}");
    }
    if let Some(path) = &args.metrics_det_out {
        if let Err(e) = std::fs::write(path, sp.metrics().deterministic_json()) {
            eprintln!("FAIL: cannot write --metrics-det-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote deterministic metrics dump -> {path}");
    }

    if !eps_ok {
        eprintln!("FAIL: incremental path violated ε");
        return ExitCode::FAILURE;
    }
    // Deletion batches trigger refinement (and its purging compactions)
    // far more often than add-only ones, so the churn acceptance bar is
    // "still clearly beating scratch"; the add-only bar stays at 5x. The
    // baseline gate below guards against gradual regression either way.
    let speedup_bar = if args.churn > 0.0 { 2.0 } else { 5.0 };
    if speedup < speedup_bar {
        eprintln!("FAIL: speedup {speedup:.1}x below the {speedup_bar}x acceptance bar");
        return ExitCode::FAILURE;
    }

    // Perf gate: compare against the committed baseline record.
    if let Some(path) = &args.check_against {
        let baseline = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| PerfRecord::from_json(&text))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: cannot load baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_regression(&record, &baseline, args.max_regress) {
            Ok(()) => println!(
                "perf gate: normalized wall-clock {:.4} vs baseline {:.4} — within {:.0}%",
                record.normalized_wallclock(),
                baseline.normalized_wallclock(),
                args.max_regress * 100.0
            ),
            Err(reasons) => {
                eprintln!("FAIL: perf gate: {reasons}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Parallel-scaling check: same-machine comparison against a serial
    // run's record from the same CI job.
    if let Some(path) = &args.expect_speedup_over {
        let serial = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| PerfRecord::from_json(&text))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL: cannot load serial record {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_parallel_speedup(&record, &serial, args.min_par_speedup) {
            Ok(()) => println!(
                "parallel scaling: {:.2}x over the threads={} run (bar {:.2}x)",
                serial.inc_total_ms / record.inc_total_ms.max(1e-9),
                serial.threads,
                args.min_par_speedup
            ),
            Err(reason) => {
                eprintln!("FAIL: parallel scaling: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("PASS: ε held after every batch, speedup {speedup:.1}x >= {speedup_bar}x");
    ExitCode::SUCCESS
}
