//! Figure 1: per-worker PageRank iteration times on 16 workers under the
//! four partitioning strategies, annotated with the percentage of local
//! (uncut) edges.
//!
//! Paper result to reproduce (shape): vertex partitioning creates an
//! edge-overloaded straggler (slowest iteration), edge partitioning leaves
//! a vertex-count imbalance, and vertex-edge partitioning trades a little
//! locality for the flattest histogram and the fastest iteration.

use mdbgp_bench::datasets;
use mdbgp_bench::policies::{timed, Policy};
use mdbgp_bench::table::{bar_chart, pct, Table};
use mdbgp_bsp::{apps::PageRank, BspEngine, CostModel};

fn main() {
    const WORKERS: usize = 16;
    const EPS: f64 = 0.03;
    let data = datasets::fb(1);
    println!(
        "Figure 1 — PageRank iteration time per worker ({} = {} vertices / {} edges, {} workers)",
        data.name,
        data.graph.num_vertices(),
        data.graph.num_edges(),
        WORKERS
    );

    let mut summary = Table::new([
        "policy",
        "local edges %",
        "iteration time (max worker)",
        "mean worker",
        "slowest/mean",
        "partition time",
    ]);

    for policy in Policy::all() {
        let (partition, ptime) = timed(|| {
            policy
                .partition(&data.graph, WORKERS, EPS, 42)
                .expect("partition")
        });
        let engine = BspEngine::new(&data.graph, &partition, CostModel::default());
        let (stats, _) = engine.run(&PageRank::default());

        let locality = partition.edge_locality(&data.graph);
        let (mean, max, _) = stats.runtime_summary();

        // The histogram itself: per-worker mean busy time.
        let times = stats.worker_mean_times();
        let entries: Vec<(String, f64)> = times
            .iter()
            .enumerate()
            .map(|(w, &t)| (format!("worker {w:>2}"), t / 1000.0))
            .collect();
        println!(
            "\n[{}] locality = {}% of messages local",
            policy.name(),
            pct(stats.local_message_fraction())
        );
        print!("{}", bar_chart(&entries, 46));

        summary.row([
            policy.name().to_string(),
            pct(locality),
            format!("{max:.0}"),
            format!("{mean:.0}"),
            format!("{:.2}x", max / mean.max(1e-9)),
            format!("{:.2}s", ptime.as_secs_f64()),
        ]);
    }

    println!("\nSummary (time in cost-model units):");
    println!("{summary}");
    println!(
        "Paper's shape: vertex partitioning has the tallest straggler bar;\n\
         vertex-edge is flattest and fastest despite lower edge locality."
    );
}
