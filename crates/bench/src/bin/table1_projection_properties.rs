//! Table 1: theoretical properties of the projection methods, verified
//! empirically — output type (feasible point vs true projection) and
//! running time.
//!
//! | method | paper's claim | empirical check |
//! |---|---|---|
//! | alternating | any x ∈ K, until convergence | feasibility only |
//! | Dykstra | the projection, until convergence | matches exact |
//! | exact (d ≤ 2) | the projection, O(n log^{d-1} n) | optimal + fastest |

use mdbgp_bench::table::Table;
use mdbgp_core::config::ProjectionMethod;
use mdbgp_core::feasible::FeasibleRegion;
use mdbgp_core::projection::project;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn instance(n: usize, d: usize, eps: f64, seed: u64) -> (Vec<f64>, FeasibleRegion) {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<Vec<f64>> = (0..d)
        .map(|_| (0..n).map(|_| rng.gen_range(0.5..5.0)).collect())
        .collect();
    // Biased upward so the balance slabs actually bind (an unbiased random
    // point is almost surely already feasible and the projection trivial).
    let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.2..3.8)).collect();
    (y, FeasibleRegion::symmetric(weights, eps))
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn main() {
    println!("Table 1 — projection method properties (n = 100k, ε = 0.01)\n");
    const N: usize = 100_000;
    const REPS: usize = 5;

    for d in [1usize, 2] {
        let mut table = Table::new([
            "method",
            "output",
            "slab violation (rel)",
            "excess dist vs exact",
            "time ms",
        ]);
        for method in [
            ProjectionMethod::OneShotAlternating,
            ProjectionMethod::AlternatingConverged,
            ProjectionMethod::Dykstra,
            ProjectionMethod::Exact,
        ] {
            let mut worst_violation = 0.0f64;
            let mut worst_excess = 0.0f64;
            let mut total_ms = 0.0f64;
            for rep in 0..REPS {
                let (y, region) = instance(N, d, 0.01, 100 + rep as u64);
                let exact = project(ProjectionMethod::Exact, &y, &region);
                let start = Instant::now();
                let x = project(method, &y, &region);
                total_ms += start.elapsed().as_secs_f64() * 1e3;
                worst_violation = worst_violation.max(region.max_violation(&x));
                worst_excess = worst_excess.max(dist(&x, &y) - dist(&exact, &y));
            }
            let output = match method {
                ProjectionMethod::OneShotAlternating => "near-feasible point",
                ProjectionMethod::AlternatingConverged => "point of K",
                ProjectionMethod::Dykstra => "the projection",
                ProjectionMethod::Exact => "the projection",
            };
            table.row([
                format!("{method:?}"),
                output.to_string(),
                format!("{worst_violation:.2e}"),
                format!("{worst_excess:+.2e}"),
                format!("{:.1}", total_ms / REPS as f64),
            ]);
        }
        println!("d = {d}:\n{table}");
    }
    println!(
        "Reading: Dykstra's excess distance vs the exact KKT solution is ~0\n\
         (both find the projection); converged alternating lands in K but\n\
         farther from y; one-shot trades a small residual violation for the\n\
         lowest cost — the trade the paper makes in its default setting."
    );
}
