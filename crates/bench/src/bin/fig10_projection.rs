//! Figure 10: projection method comparison — exact KKT projection with
//! allowed imbalance ε ∈ {0.1, 0.01, 0.001} versus the default "one-shot"
//! alternating projection — on the LiveJournal and Orkut proxies.
//!
//! Paper result to reproduce: larger allowed imbalance lets exact
//! projection reach better locality; one-shot alternating lands close to
//! the exact curves at a fraction of the cost. (Dykstra's projection
//! coincides with exact projection and is verified separately in
//! `table1_projection_properties`.)

use mdbgp_bench::curves::{print_locality_curves, run_curve};
use mdbgp_bench::datasets;
use mdbgp_core::{GdConfig, ProjectionMethod};

fn main() {
    println!("Figure 10 — projection methods (60 iterations)");
    for data in [datasets::lj(), datasets::orkut()] {
        let mut curves = Vec::new();
        for eps in [0.1, 0.01, 0.001] {
            let cfg = GdConfig {
                iterations: 60,
                projection: ProjectionMethod::Exact,
                ..GdConfig::with_epsilon(eps)
            };
            curves.push(run_curve(&data, cfg, 37, &format!("exact eps={eps}")));
        }
        let cfg = GdConfig {
            iterations: 60,
            projection: ProjectionMethod::OneShotAlternating,
            ..GdConfig::with_epsilon(0.01)
        };
        curves.push(run_curve(&data, cfg, 37, "alternating"));
        print_locality_curves(data.name, &curves, 6);
    }
    println!("Paper's shape: exact(0.1) ≥ exact(0.01) ≥ exact(0.001), with the");
    println!("one-shot alternating curve close to the matching exact curve.");
}
