//! Appendix C.2 (Figures 15–17): the convergence experiments of Figures
//! 8–10 repeated on the Q&A proxy (sx-stackoverflow) next to LiveJournal —
//! the largest SNAP graph that is *not* a social network.
//!
//! Paper result to reproduce: the same qualitative behaviour carries over
//! (step 2ξ best, adaptive+fixing best and balanced, exact ≥ alternating),
//! with faster convergence and lower final locality on the Q&A graph.

use mdbgp_bench::curves::{print_imbalance_curves, print_locality_curves, run_curve};
use mdbgp_bench::datasets;
use mdbgp_core::{GdConfig, ProjectionMethod, StepSchedule};

fn main() {
    let qa = datasets::stackoverflow();
    let lj = datasets::lj();

    // --- Figure 16 analogue: step lengths. ---
    println!("Figure 16 — fixed step lengths on the Q&A proxy");
    for data in [&qa, &lj] {
        let curves: Vec<_> = [10.0, 5.0, 2.0, 1.0]
            .into_iter()
            .map(|factor| {
                let cfg = GdConfig {
                    iterations: 100,
                    step: StepSchedule::FixedLength { factor },
                    fixing_threshold: None,
                    ..GdConfig::with_epsilon(0.03)
                };
                run_curve(data, cfg, 71, &format!("step {factor}ξ"))
            })
            .collect();
        print_locality_curves(data.name, &curves, 10);
    }

    // --- Figure 15 analogue: adaptivity + fixing. ---
    println!("\nFigure 15 — adaptive step & vertex fixing on the Q&A proxy");
    for data in [&qa, &lj] {
        let base = GdConfig {
            iterations: 100,
            ..GdConfig::with_epsilon(0.03)
        };
        // Constant γ as in fig9: 1/mean_degree scale, no adaptation.
        let gamma = 0.05 / data.graph.mean_degree();
        let curves = vec![
            run_curve(
                data,
                GdConfig {
                    step: StepSchedule::Constant { gamma },
                    fixing_threshold: None,
                    ..base.clone()
                },
                73,
                "nonadaptive",
            ),
            run_curve(
                data,
                GdConfig {
                    fixing_threshold: None,
                    ..base.clone()
                },
                73,
                "adaptive",
            ),
            run_curve(data, base, 73, "adaptive+fixing"),
        ];
        print_locality_curves(data.name, &curves, 10);
        print_imbalance_curves(data.name, &curves, 10);
    }

    // --- Figure 17 analogue: projection methods. ---
    println!("\nFigure 17 — projection methods on the Q&A proxy");
    for data in [&qa, &lj] {
        let mut curves = Vec::new();
        for eps in [0.1, 0.01, 0.001] {
            let cfg = GdConfig {
                iterations: 60,
                projection: ProjectionMethod::Exact,
                ..GdConfig::with_epsilon(eps)
            };
            curves.push(run_curve(data, cfg, 79, &format!("exact eps={eps}")));
        }
        let cfg = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(0.01)
        };
        curves.push(run_curve(data, cfg, 79, "alternating"));
        print_locality_curves(data.name, &curves, 6);
    }
}
