//! Figure 6: edge locality of Hash, BLP and GD on the Facebook-like
//! proxies with many partitions, k ∈ {16, 128}.
//!
//! Paper result to reproduce: Hash collapses (over 99% of edges cut at
//! k = 128), and GD's lead over BLP *grows* with graph size — around
//! 10–20 points at k = 16 and 5–10 at k = 128.

use mdbgp_baselines::{BlpPartitioner, HashPartitioner, Partitioner};
use mdbgp_bench::datasets;
use mdbgp_bench::policies::{gd_fast, timed};
use mdbgp_bench::table::{pct, Table};

fn main() {
    const EPS: f64 = 0.05;
    println!("Figure 6 — edge locality %, FB proxies, k in {{16, 128}} (higher is better)\n");

    let hash = HashPartitioner;
    let blp = BlpPartitioner::default();
    let gd = gd_fast(EPS);
    let algos: [&dyn Partitioner; 3] = [&hash, &blp, &gd];

    let mut table = Table::new(["graph", "k", "Hash", "BLP", "GD", "GD time s"]);
    for scale in 0..=2 {
        let data = datasets::fb(scale);
        let weights = data.vertex_edge_weights();
        for k in [16usize, 128] {
            let mut row = vec![data.name.to_string(), k.to_string()];
            let mut gd_time = String::new();
            for algo in algos {
                let (result, t) = timed(|| algo.partition(&data.graph, &weights, k, 13));
                match result {
                    Ok(p) => {
                        row.push(pct(p.edge_locality(&data.graph)));
                        if algo.name() == "GD" {
                            gd_time = format!("{:.1}", t.as_secs_f64());
                        }
                    }
                    Err(e) => row.push(format!("err: {e}")),
                }
            }
            row.push(gd_time);
            table.row(row);
        }
    }
    println!("{table}");
    println!(
        "As in the paper: hash keeps only 100/k % of edges local, and GD's\n\
         advantage over BLP widens as the graphs grow (3B → 80B → 400B)."
    );
}
