//! Figure 5: edge locality of Hash, BLP and GD on the public proxies,
//! k ∈ {2, 8}, balancing vertices + degrees with ε = 0.05.
//!
//! Paper result to reproduce: GD > BLP ≫ Hash everywhere, with Hash pinned
//! at 1/k and GD ahead of BLP by a few points.

use mdbgp_baselines::{BlpPartitioner, HashPartitioner, Partitioner};
use mdbgp_bench::datasets;
use mdbgp_bench::policies::gd_fast;
use mdbgp_bench::table::{pct, Table};

fn main() {
    const EPS: f64 = 0.05;
    println!("Figure 5 — edge locality %, public proxies, k in {{2, 8}} (higher is better)\n");

    let hash = HashPartitioner;
    let blp = BlpPartitioner::default();
    let gd = gd_fast(EPS);
    let algos: [&dyn Partitioner; 3] = [&hash, &blp, &gd];

    let mut table = Table::new(["graph", "k", "Hash", "BLP", "GD", "GD max imbalance %"]);
    for data in datasets::public_graphs() {
        let weights = data.vertex_edge_weights();
        for k in [2usize, 8] {
            let mut row = vec![data.name.to_string(), k.to_string()];
            let mut gd_imbalance = String::new();
            for algo in algos {
                match algo.partition(&data.graph, &weights, k, 11) {
                    Ok(p) => {
                        row.push(pct(p.edge_locality(&data.graph)));
                        if algo.name() == "GD" {
                            gd_imbalance = pct(p.max_imbalance(&weights));
                        }
                    }
                    Err(e) => row.push(format!("err: {e}")),
                }
            }
            row.push(gd_imbalance);
            table.row(row);
        }
    }
    println!("{table}");
    println!("Hash sits at 100/k by construction; GD leads BLP as in the paper.");
}
