//! `mdbgp_cli` — command-line front end for the whole workspace.
//!
//! ```text
//! mdbgp_cli generate  --model community --n 50000 --output g.txt
//! mdbgp_cli partition --input g.txt --algo gd --k 8 --eps 0.03 \
//!                     --dims unit,degree --output parts.txt
//! mdbgp_cli evaluate  --input g.txt --partition parts.txt --dims unit,degree
//! ```
//!
//! Graph formats: `text` (SNAP edge list), `metis`, `binary` (selected by
//! `--format`, default `text`). Partitions are one part id per line.

use mdbgp_baselines::{
    BlpPartitioner, HashPartitioner, MetisPartitioner, ShpPartitioner, SpinnerPartitioner,
};
use mdbgp_core::{GdConfig, GdPartitioner, KWayGdPartitioner};
use mdbgp_graph::gen;
use mdbgp_graph::{
    io as gio, Graph, InducedSubgraph, Partition, Partitioner, VertexWeights, WeightKind,
};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

/// Minimal `--key value` argument map.
struct Args {
    values: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", argv[i]))?;
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            values.insert(key.to_string(), value);
            i += 2;
        }
        Ok(Self { values })
    }

    fn req(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{key}"))
    }

    fn opt(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }
}

/// Parses the `--dims` list into weight kinds.
fn parse_dims(spec: &str) -> Result<Vec<WeightKind>, String> {
    spec.split(',')
        .map(|tok| match tok.trim() {
            "unit" => Ok(WeightKind::Unit),
            "degree" => Ok(WeightKind::Degree),
            "ndsum" => Ok(WeightKind::NeighborDegreeSum),
            "pagerank" => Ok(WeightKind::pagerank_default()),
            other => Err(format!(
                "unknown dimension '{other}' (unit|degree|ndsum|pagerank)"
            )),
        })
        .collect()
}

fn load_graph(path: &str, format: &str) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    match format {
        "text" => gio::read_edge_list(file),
        "metis" => gio::read_metis(file),
        "binary" => gio::read_binary(file),
        other => return Err(format!("unknown format '{other}'")),
    }
    .map_err(|e| format!("read {path}: {e}"))
}

fn save_graph(graph: &Graph, path: &str, format: &str) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    match format {
        "text" => gio::write_edge_list(graph, file),
        "metis" => gio::write_metis(graph, file),
        "binary" => gio::write_binary(graph, file),
        other => return Err(format!("unknown format '{other}'")),
    }
    .map_err(|e| format!("write {path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let model = args.opt("model", "community");
    let n: usize = args.num("n", 10_000)?;
    let seed: u64 = args.num("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = match model.as_str() {
        "community" => {
            let mut cfg = gen::CommunityGraphConfig::social(n);
            cfg.mean_degree = args.num("mean-degree", cfg.mean_degree)?;
            cfg.mixing = args.num("mixing", cfg.mixing)?;
            cfg.density_spread = args.num("density-spread", cfg.density_spread)?;
            gen::community_graph(&cfg, &mut rng).graph
        }
        "rmat" => {
            let scale = (n as f64).log2().ceil() as u32;
            let ef: usize = args.num("edge-factor", 16)?;
            gen::rmat(gen::RmatConfig::graph500(scale, ef), &mut rng)
        }
        "er" => {
            let m: usize = args.num("edges", n * 8)?;
            gen::erdos_renyi(n, m, &mut rng)
        }
        "ba" => {
            let m: usize = args.num("attach", 8)?;
            gen::barabasi_albert(n, m, &mut rng)
        }
        other => return Err(format!("unknown model '{other}' (community|rmat|er|ba)")),
    };
    let out = args.req("output")?;
    save_graph(&graph, out, &args.opt("format", "text"))?;
    println!(
        "generated {model}: {} vertices, {} edges -> {out}",
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}

fn cmd_partition(args: &Args) -> Result<(), String> {
    let graph = load_graph(args.req("input")?, &args.opt("format", "text"))?;
    let kinds = parse_dims(&args.opt("dims", "unit,degree"))?;
    let weights = VertexWeights::build(&graph, &kinds);
    let k: usize = args.num("k", 2)?;
    let eps: f64 = args.num("eps", 0.03)?;
    let seed: u64 = args.num("seed", 42)?;

    let algo = args.opt("algo", "gd");
    let gd = GdPartitioner::new(GdConfig::with_epsilon(eps));
    let gd_kway = KWayGdPartitioner::new(GdConfig::with_epsilon(eps));
    let hash = HashPartitioner;
    let spinner = SpinnerPartitioner::default();
    let blp = BlpPartitioner::default();
    let shp = ShpPartitioner::default();
    let metis = MetisPartitioner {
        epsilon: eps,
        ..MetisPartitioner::default()
    };
    let partitioner: &dyn Partitioner = match algo.as_str() {
        "gd" => &gd,
        "gd-kway" => &gd_kway,
        "hash" => &hash,
        "spinner" => &spinner,
        "blp" => &blp,
        "shp" => &shp,
        "metis" => &metis,
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (gd|gd-kway|hash|spinner|blp|shp|metis)"
            ))
        }
    };

    let start = std::time::Instant::now();
    let partition = partitioner
        .partition(&graph, &weights, k, seed)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let q = partition.quality(&graph, &weights);
    println!(
        "{} in {:.2}s: {q}",
        partitioner.name(),
        elapsed.as_secs_f64()
    );

    if let Ok(out) = args.req("output") {
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        for v in 0..partition.num_vertices() {
            writeln!(file, "{}", partition.part_of(v as u32)).map_err(|e| e.to_string())?;
        }
        println!("wrote assignment -> {out}");
    }
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let graph = load_graph(args.req("input")?, &args.opt("format", "text"))?;
    let kinds = parse_dims(&args.opt("dims", "unit,degree"))?;
    let weights = VertexWeights::build(&graph, &kinds);

    let ppath = args.req("partition")?;
    let file = std::fs::File::open(ppath).map_err(|e| format!("open {ppath}: {e}"))?;
    let mut parts = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        parts.push(
            t.parse::<u32>()
                .map_err(|e| format!("bad part id '{t}': {e}"))?,
        );
    }
    if parts.len() != graph.num_vertices() {
        return Err(format!(
            "partition covers {} vertices but graph has {}",
            parts.len(),
            graph.num_vertices()
        ));
    }
    let k = (*parts.iter().max().unwrap_or(&0) + 1) as usize;
    let partition = Partition::new(parts, k);
    let q = partition.quality(&graph, &weights);
    println!("{q}");
    println!("modularity: {:.4}", partition.modularity(&graph));
    for (j, imb) in q.imbalance.iter().enumerate() {
        println!("dimension {j}: imbalance {:.3}%", imb * 100.0);
    }
    Ok(())
}

/// Replays a stored edge list as an online stream: bootstrap GD on a
/// vertex-id prefix, then ingest the remaining vertices (with their
/// backward edges) in batches through `mdbgp-stream`, printing per-batch
/// drift/quality telemetry. With `--churn F`, each batch also removes
/// `F` of its arrival count in random live vertices (and as many random
/// live edges), exercising the tombstone/purge path; the replay tracks
/// the id remaps purging compactions report.
///
/// Warm restart: `--save-snapshot FILE` persists the engine after the
/// last ingested batch (combine with `--stop-after B` to simulate a
/// crash mid-stream), and `--load-snapshot FILE` resumes a later
/// invocation from that state instead of bootstrapping — streaming
/// continues from wherever the saved run stopped. The replay addresses
/// vertices by their original input ids, so resume requires a snapshot
/// whose engine ids still *are* the input ids: id epoch 0 (no purging
/// compactions — rejected with the named stale-epoch error) and no
/// removals so far (recycled ids re-number arrivals even before any
/// purge, and the snapshot does not carry the replay's original→current
/// map). Churn *after* the resume point is fine.
fn cmd_stream(args: &Args) -> Result<(), String> {
    let graph = load_graph(args.req("input")?, &args.opt("format", "text"))?;
    let n = graph.num_vertices();
    let k: usize = args.num("k", 8)?;
    let eps: f64 = args.num("eps", 0.05)?;
    let seed: u64 = args.num("seed", 42)?;
    let batches: usize = args.num("batches", 10)?;
    let stop_after: usize = args.num("stop-after", 0)?;
    let threads: usize = args.num("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let churn: f64 = args.num("churn", 0.0)?;
    if !(0.0..1.0).contains(&churn) {
        return Err(format!("--churn must be in [0, 1), got {churn}"));
    }
    let bootstrap_fraction: f64 = args.num("bootstrap-fraction", 0.8)?;
    if !(0.0 < bootstrap_fraction && bootstrap_fraction < 1.0) {
        return Err(format!(
            "--bootstrap-fraction must be in (0, 1), got {bootstrap_fraction}"
        ));
    }
    // `.prom`/`.txt` gets the Prometheus text exposition, anything else
    // the JSON dump. `--metrics-every N` additionally flushes the file
    // every N batches so a long run (or one killed mid-stream) leaves a
    // scrapeable dump behind, not just the final snapshot.
    let metrics_out: Option<String> = args.req("metrics-out").ok().map(String::from);
    let metrics_every: usize = args.num("metrics-every", 0)?;
    if metrics_every > 0 && metrics_out.is_none() {
        return Err("--metrics-every needs --metrics-out FILE".into());
    }
    let write_metrics = |sp: &mut StreamingPartitioner, path: &str| -> Result<(), String> {
        let dump = if path.ends_with(".prom") || path.ends_with(".txt") {
            sp.metrics().render_text()
        } else {
            sp.metrics().render_json()
        };
        std::fs::write(path, dump).map_err(|e| format!("write metrics {path}: {e}"))
    };

    let (mut sp, n0, resumed_batches, resumed_tracker) = if let Ok(path) = args.req("load-snapshot")
    {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let mut reader = std::io::BufReader::new(file);
        // The replay scripts in original input ids, but the engine's id
        // space may have moved on (recycled slots, post-purge renumbering
        // at any id epoch): the resume trailer after the engine snapshot
        // carries the original→current map, so no epoch expectation here
        // — only shape (matching k, and the replay's two weight
        // dimensions: unit + degree).
        let expect = mdbgp_stream::SnapshotExpectation::default()
            .with_k(k)
            .with_dims(2);
        let start = std::time::Instant::now();
        let mut sp = StreamingPartitioner::restore_expecting(&mut reader, &expect)
            .map_err(|e| format!("load snapshot {path}: {e}"))?;
        sp.set_threads(threads);
        // `read_snapshot` consumed exactly the engine snapshot; what
        // follows (if anything) is the replay's own trailer.
        let trailer = mdbgp_bench::resume::read_trailer(&mut reader)
            .map_err(|e| format!("load snapshot {path}: {e}"))?;
        let (n0, batch_no, tracker) = match trailer {
            Some(state) => {
                let n0 = state.arrived as usize;
                if n0 > n {
                    return Err(format!(
                        "snapshot covers {n0} streamed vertices but the input graph has only \
                         {n} — wrong input file for this snapshot?"
                    ));
                }
                let tracker = mdbgp_bench::churn::IdTracker::from_map(state.map);
                // Light cross-validation: every live translation must
                // land inside the restored engine's id space.
                let engine_n = sp.graph().num_vertices() as u32;
                for orig in 0..tracker.len() as u32 {
                    if let Some(cur) = tracker.current(orig) {
                        if cur >= engine_n {
                            return Err(format!(
                                "resume trailer maps original vertex {orig} to engine id {cur}, \
                                 outside the restored engine's {engine_n}-vertex id space — \
                                 trailer and snapshot disagree"
                            ));
                        }
                    }
                }
                (n0, state.batch_no as usize, tracker)
            }
            None => {
                // Legacy snapshot with no trailer: the old restrictions
                // apply, because without the id map the replay can only
                // continue if engine ids still *are* the original input
                // ids — no purge (epoch 0) and no removals ever.
                if sp.id_epoch() != 0 || sp.telemetry().vertices_removed > 0 {
                    return Err(format!(
                        "cannot resume the replay from {path}: the snapshot carries no resume \
                         trailer (saved by an older build?) and its run removed {} vertices at \
                         id epoch {}, so engine ids no longer match the input file's original \
                         ids — trailer-less resume supports churn-free runs only; churn after \
                         the resume point is fine",
                        sp.telemetry().vertices_removed,
                        sp.id_epoch()
                    ));
                }
                let n0 = sp.graph().num_vertices();
                if n0 > n {
                    return Err(format!(
                        "snapshot covers {n0} vertices but the input graph has only {n} — \
                         wrong input file for this snapshot?"
                    ));
                }
                (n0, 0, mdbgp_bench::churn::IdTracker::identity(n0))
            }
        };
        println!(
            "resumed from {path} in {:.2}s: {n0}/{n} vertices already ingested \
             ({} batches so far, id epoch {}), locality {:.1}%, imbalance {:.2}%",
            start.elapsed().as_secs_f64(),
            sp.telemetry().batches,
            sp.id_epoch(),
            sp.store().edge_locality() * 100.0,
            sp.max_imbalance() * 100.0
        );
        (sp, n0, batch_no, tracker)
    } else {
        let n0 = ((n as f64 * bootstrap_fraction) as usize)
            .max(k)
            .min(n.saturating_sub(1));
        let prefix: Vec<u32> = (0..n0 as u32).collect();
        let boot = InducedSubgraph::extract(&graph, &prefix);
        let weights = VertexWeights::vertex_edge(&boot.graph);
        let mut cfg = StreamConfig::new(k, eps).with_threads(threads);
        cfg.gd = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(eps)
        };
        cfg.seed = seed;

        let start = std::time::Instant::now();
        let sp = StreamingPartitioner::bootstrap(boot.graph.clone(), weights, cfg)
            .map_err(|e| e.to_string())?;
        println!(
            "bootstrap on {n0}/{n} vertices in {:.2}s: locality {:.1}%, imbalance {:.2}%",
            start.elapsed().as_secs_f64(),
            sp.store().edge_locality() * 100.0,
            sp.max_imbalance() * 100.0
        );
        (sp, n0, 0, mdbgp_bench::churn::IdTracker::identity(n0))
    };

    let per_batch = (n - n0).div_ceil(batches.max(1));
    let mut arrived = n0 as u32;
    let mut batch_no = resumed_batches;
    // Fresh bootstrap: the identity tracker, trivially. Resume: the
    // trailer's map (or, for a trailer-less legacy snapshot, identity —
    // valid because that path rejects any run that removed vertices).
    let mut tracker = resumed_tracker;
    // The churn RNG is reseeded fresh on resume: removal *victims* after
    // the resume point differ from the uninterrupted run's, which is
    // fine — victims are sampled from the live graph through the
    // tracker, so any sequence is a valid churn script. Resume restores
    // *state*, not the original run's future randomness.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    while (arrived as usize) < n {
        if stop_after > 0 && batch_no >= stop_after {
            println!(
                "stopping after batch {batch_no} as requested ({} vertices left unstreamed)",
                n - arrived as usize
            );
            break;
        }
        batch_no += 1;
        let end = ((arrived as usize + per_batch).min(n)) as u32;
        let mut batch = UpdateBatch::new();
        // Arrival ids recycle tombstoned slots under churn; mirror the
        // engine's free list so same-batch co-arrival edges resolve, and
        // verify against the authoritative report below.
        let predicted =
            mdbgp_bench::churn::predict_arrival_ids(sp.graph(), (end - arrived) as usize);
        for v in arrived..end {
            let backward: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| u < v)
                .filter_map(|u| tracker.current(u))
                .collect();
            let w = backward.len().max(1) as f64;
            batch.add_vertex(vec![1.0, w], backward);
            tracker.push(predicted[(v - arrived) as usize]);
        }
        if churn > 0.0 {
            let removals = ((end - arrived) as f64 * churn) as usize;
            mdbgp_bench::churn::queue_removals(
                &mut batch,
                sp.graph(),
                &mut tracker,
                &mut rng,
                removals,
                removals,
            );
        }
        arrived = end;
        let start = std::time::Instant::now();
        let report = sp.ingest(&batch).map_err(|e| e.to_string())?;
        if let Some(remap) = &report.remap {
            tracker.apply_remap(remap);
        }
        mdbgp_bench::churn::verify_arrival_ids(&tracker, end, &report.arrival_ids)?;
        println!(
            "batch {batch_no}: +{} -{} vertices, +{} -{} edges in {:.1}ms — imbalance \
             {:.2}%, locality {:.1}%{}{}",
            report.vertices_added,
            report.vertices_removed,
            report.edges_added,
            report.edges_removed,
            start.elapsed().as_secs_f64() * 1e3,
            report.max_imbalance * 100.0,
            report.edge_locality * 100.0,
            if report.refined {
                format!(
                    " (refined: {} rebalance + {} gd moves)",
                    report.rebalance_moves, report.refine_moves
                )
            } else {
                String::new()
            },
            if report.placement_conflicts > 0 {
                format!(
                    " (repaired {} placement conflicts in {} passes)",
                    report.placement_conflicts, report.repair_passes
                )
            } else {
                String::new()
            }
        );
        if metrics_every > 0 && batch_no.is_multiple_of(metrics_every) {
            if let Some(path) = &metrics_out {
                write_metrics(&mut sp, path)?;
                println!("flushed metrics -> {path} (batch {batch_no})");
            }
        }
    }

    // Persist the engine *before* the final output purge below (which
    // exists only to make the `--output` assignment cover exactly the
    // live vertices). The snapshot itself may be taken at any id epoch:
    // the resume trailer appended after it carries the replay's
    // original→current id map, so a later `--load-snapshot` continues
    // scripting in original ids regardless of purges. `--purge-before-save
    // true` forces a purging compaction first — a deterministic way to
    // exercise (and regression-test) the post-purge resume path.
    if let Ok(path) = args.req("save-snapshot") {
        if args.num::<bool>("purge-before-save", false)? {
            if let Some(remap) = sp.purge() {
                tracker.apply_remap(&remap);
            }
            println!(
                "purged before save: id epoch {}, {} live vertices",
                sp.id_epoch(),
                sp.graph().num_vertices()
            );
        }
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?,
        );
        let info = sp
            .save_snapshot(&mut file)
            .map_err(|e| format!("save snapshot {path}: {e}"))?;
        let state = mdbgp_bench::resume::ResumeState {
            arrived,
            batch_no: batch_no as u64,
            map: tracker.as_slice().to_vec(),
        };
        mdbgp_bench::resume::write_trailer(&mut file, &state)
            .map_err(|e| format!("save snapshot {path}: {e}"))?;
        println!(
            "wrote snapshot -> {path} ({} payload bytes + resume trailer, id epoch {}, k {}, \
             {} dims, {arrived} streamed)",
            info.payload_bytes, info.id_epoch, info.k, info.dims
        );
    }

    if let Some(path) = &metrics_out {
        write_metrics(&mut sp, path)?;
        println!("wrote metrics dump -> {path}");
    }

    // Under churn the final snapshot may still hold tombstoned ids; purge
    // so the partition written below covers exactly the live vertices.
    if let Some(remap) = sp.purge() {
        tracker.apply_remap(&remap);
    }
    let t = sp.telemetry();
    println!(
        "done: {} placed, {} removed, +{} -{} edges, {} compactions ({} remaps), \
         {} refinements; final imbalance {:.2}%, locality {:.1}%",
        t.vertices_placed,
        t.vertices_removed,
        t.edges_added,
        t.edges_removed,
        t.compactions,
        t.remaps,
        t.refinements,
        sp.max_imbalance() * 100.0,
        sp.store().edge_locality() * 100.0
    );
    if let Ok(out) = args.req("output") {
        let partition = sp.partition();
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        if churn > 0.0 {
            // Purges renumbered the engine ids, so one-part-per-line would
            // silently key on post-purge ids; write explicit
            // `original-id part` pairs instead (removed vertices have no
            // part and are omitted). Not `evaluate` input — the streamed
            // graph no longer matches the input file anyway.
            for orig in 0..tracker.len() as u32 {
                if let Some(cur) = tracker.current(orig) {
                    writeln!(file, "{orig} {}", partition.part_of(cur))
                        .map_err(|e| e.to_string())?;
                }
            }
            println!(
                "wrote assignment (original-id part pairs; removed vertices omitted) -> {out}"
            );
        } else {
            for v in 0..partition.num_vertices() {
                writeln!(file, "{}", partition.part_of(v as u32)).map_err(|e| e.to_string())?;
            }
            println!("wrote assignment -> {out}");
        }
    }
    Ok(())
}

const USAGE: &str = "usage: mdbgp_cli <generate|partition|evaluate|stream> [--flag value]...
  generate  --model community|rmat|er|ba --n N --output FILE
            [--format text|metis|binary] [--seed S] [--mean-degree D]
            [--mixing M] [--density-spread S] [--edges M] [--attach M]
  partition --input FILE --algo gd|gd-kway|hash|spinner|blp|shp|metis
            --k K [--eps E] [--dims unit,degree,ndsum,pagerank]
            [--seed S] [--output PARTS] [--format text|metis|binary]
  evaluate  --input FILE --partition PARTS [--dims ...]
  stream    --input FILE --k K [--eps E] [--batches B] [--threads T]
            [--churn F] [--bootstrap-fraction F] [--seed S]
            [--stop-after B] [--save-snapshot FILE] [--load-snapshot FILE]
            [--purge-before-save true] [--metrics-out FILE] [--metrics-every N]
            [--output PARTS] [--format text|metis|binary]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "partition" => cmd_partition(&args),
        "evaluate" => cmd_evaluate(&args),
        "stream" => cmd_stream(&args),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn arg_parsing_roundtrip() {
        let a = args(&["--k", "8", "--eps", "0.05"]);
        assert_eq!(a.req("k").unwrap(), "8");
        assert_eq!(a.num::<usize>("k", 2).unwrap(), 8);
        assert_eq!(a.num::<f64>("eps", 0.1).unwrap(), 0.05);
        assert_eq!(a.num::<u64>("seed", 7).unwrap(), 7, "default applies");
        assert!(a.req("missing").is_err());
    }

    #[test]
    fn arg_parsing_rejects_malformed() {
        assert!(Args::parse(&["k".to_string()]).is_err());
        assert!(Args::parse(&["--k".to_string()]).is_err());
    }

    #[test]
    fn dims_parser() {
        let kinds = parse_dims("unit,degree,ndsum,pagerank").unwrap();
        assert_eq!(kinds.len(), 4);
        assert_eq!(kinds[0], WeightKind::Unit);
        assert!(parse_dims("bogus").is_err());
    }
}
