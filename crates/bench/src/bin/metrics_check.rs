//! CI schema validator for `stream_online --metrics-out` dumps.
//!
//! Usage: `metrics_check FILE [--min-journal-events N] [--require NAME]...`
//!
//! Validates the dump against the engine's metric-name allowlist
//! ([`mdbgp_stream::METRIC_ALLOWLIST`]) via [`mdbgp_obs::validate_dump`]:
//! every required section present, histogram quantiles monotone, span
//! child-sums bounded by their parents, and no metric name outside the
//! allowlist — a typo'd instrumentation site fails CI here instead of
//! silently dashboarding an always-zero series. `--min-journal-events`
//! additionally asserts the run journaled at least N engine events, so a
//! refactor that silently drops the journal wiring cannot pass. Each
//! `--require NAME` (repeatable) asserts the named metric was actually
//! *recorded* in the dump — the allowlist only bounds what names may
//! appear; this bounds what must — so unwiring an instrumentation site
//! fails CI the same way mis-wiring one does.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<&str> = None;
    let mut min_events: usize = 0;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--min-journal-events" => {
                i += 1;
                min_events = match argv.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("FAIL: --min-journal-events needs an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--require" => {
                i += 1;
                match argv.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => {
                        eprintln!("FAIL: --require needs a metric name");
                        return ExitCode::FAILURE;
                    }
                }
            }
            arg if !arg.starts_with("--") && file.is_none() => file = Some(arg),
            arg => {
                eprintln!(
                    "usage: metrics_check FILE [--min-journal-events N] [--require NAME]... \
                     (got {arg:?})"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = file else {
        eprintln!("usage: metrics_check FILE [--min-journal-events N] [--require NAME]...");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mdbgp_obs::validate_dump(&text, mdbgp_stream::METRIC_ALLOWLIST) {
        Ok(stats) => {
            if stats.journal_events < min_events {
                eprintln!(
                    "FAIL: {path}: only {} journal events, need at least {min_events}",
                    stats.journal_events
                );
                return ExitCode::FAILURE;
            }
            // Metric entries render as `"name": value` lines inside the
            // counters/gauges/histograms sections; journal events render
            // as array elements, so a quoted-key prefix match cannot
            // false-positive off an event payload.
            for name in &required {
                let key = format!("\"{name}\":");
                if !text.lines().any(|l| l.trim_start().starts_with(&key)) {
                    eprintln!("FAIL: {path}: required metric {name} was not recorded");
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "{path}: OK — {} counters, {} gauges, {} histograms, {} spans, \
                 {} journal events",
                stats.counters, stats.gauges, stats.histograms, stats.spans, stats.journal_events
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
