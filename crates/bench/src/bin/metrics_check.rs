//! CI schema validator for `stream_online --metrics-out` dumps.
//!
//! Usage: `metrics_check FILE [--min-journal-events N]`
//!
//! Validates the dump against the engine's metric-name allowlist
//! ([`mdbgp_stream::METRIC_ALLOWLIST`]) via [`mdbgp_obs::validate_dump`]:
//! every required section present, histogram quantiles monotone, span
//! child-sums bounded by their parents, and no metric name outside the
//! allowlist — a typo'd instrumentation site fails CI here instead of
//! silently dashboarding an always-zero series. `--min-journal-events`
//! additionally asserts the run journaled at least N engine events, so a
//! refactor that silently drops the journal wiring cannot pass.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<&str> = None;
    let mut min_events: usize = 0;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--min-journal-events" => {
                i += 1;
                min_events = match argv.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("FAIL: --min-journal-events needs an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            arg if !arg.starts_with("--") && file.is_none() => file = Some(arg),
            arg => {
                eprintln!("usage: metrics_check FILE [--min-journal-events N] (got {arg:?})");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = file else {
        eprintln!("usage: metrics_check FILE [--min-journal-events N]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mdbgp_obs::validate_dump(&text, mdbgp_stream::METRIC_ALLOWLIST) {
        Ok(stats) => {
            if stats.journal_events < min_events {
                eprintln!(
                    "FAIL: {path}: only {} journal events, need at least {min_events}",
                    stats.journal_events
                );
                return ExitCode::FAILURE;
            }
            println!(
                "{path}: OK — {} counters, {} gauges, {} histograms, {} spans, \
                 {} journal events",
                stats.counters, stats.gauges, stats.histograms, stats.spans, stats.journal_events
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
