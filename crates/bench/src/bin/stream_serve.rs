//! `stream_serve` — concurrent-serving bench: `--readers R` reader
//! threads hammer lock-free lookups against the engine's published
//! [`mdbgp_stream::ReadView`]s while the main thread ingests churn-heavy
//! update batches, including net-shrinking ones that purge and renumber
//! the id space mid-serve.
//!
//! Scenario: a community graph bootstrapped at `--n` vertices receives
//! `--batches` batches. Even batches grow (full `--arrivals` plus extra
//! edges and a hot-shard drift spike); odd batches shrink (arrivals cut
//! to an eighth, removals above the arrival count), so tombstones survive
//! arrival-id recycling and the tight `--compact-slack` forces purging
//! compactions — the remap-heavy regime the epoch-swapped read path
//! exists for. Throughout, every reader spins: probe for a new view
//! (one atomic load), re-pin and verify the view checksum when one was
//! published, adopt the new id epoch, and serve a burst of lookups from
//! the pinned view.
//!
//! The run fails (non-zero exit) if the incremental path violates ε, if
//! fewer than two purges happened (the leg would not be testing
//! cross-epoch serving), if any reader saw a torn view (checksum
//! mismatch), or if any lookup was served across an unadopted epoch
//! (`stream.store.stale_epoch_reads` must end at zero).
//!
//! CI hooks: `--json-out FILE` dumps a v6 perf record carrying
//! `lookups_per_sec` and `lookup_p99_us` next to the usual wall-clock
//! fields; `--check-against BASELINE` gates it against the committed
//! `BENCH_stream_serve.json` — the lookup p99 is machine-normalized
//! against a same-process scratch GD solve of the final graph, like every
//! other wall-clock gate (see [`mdbgp_bench::perfgate`]). `--metrics-out`
//! writes the metrics dump `metrics_check` validates, serving counters
//! included.

use mdbgp_bench::churn::{predict_arrival_ids, queue_removals, verify_arrival_ids, IdTracker};
use mdbgp_bench::perfgate::{check_regression, BatchPerf, PerfQuantiles, PerfRecord};
use mdbgp_bench::policies::timed;
use mdbgp_bench::table::Table;
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::{gen, InducedSubgraph, Partitioner, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Args {
    n: usize,
    batches: usize,
    arrivals: usize,
    extra_edges: usize,
    drift: usize,
    churn: f64,
    k: usize,
    eps: f64,
    seed: u64,
    threads: usize,
    readers: usize,
    compact_slack: f64,
    json_out: Option<String>,
    metrics_out: Option<String>,
    check_against: Option<String>,
    max_regress: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut map = HashMap::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    let num = |key: &str, default: usize| -> Result<usize, String> {
        map.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'"))
        })
    };
    let fnum = |key: &str, default: f64| -> Result<f64, String> {
        map.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'"))
        })
    };
    Ok(Args {
        n: num("n", 20_000)?,
        batches: num("batches", 8)?,
        arrivals: num("arrivals", 400)?,
        extra_edges: num("extra-edges", 400)?,
        drift: num("drift", 120)?,
        churn: match fnum("churn", 0.4)? {
            c if (0.0..1.0).contains(&c) => c,
            c => return Err(format!("--churn must be in [0, 1), got {c}")),
        },
        k: num("k", 8)?,
        eps: fnum("eps", 0.05)?,
        seed: num("seed", 42)? as u64,
        threads: match num("threads", 1)? {
            0 => return Err("--threads must be positive".into()),
            t => t,
        },
        readers: match num("readers", 4)? {
            0 => return Err("--readers must be positive".into()),
            r => r,
        },
        // Tight by default: the leg exists to cross purges, so compactions
        // must fire on the shrinking batches rather than accumulate.
        compact_slack: fnum("compact-slack", 0.05)?,
        json_out: map.get("json-out").cloned(),
        metrics_out: map.get("metrics-out").cloned(),
        check_against: map.get("check-against").cloned(),
        max_regress: fnum("max-regress", 0.30)?,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: stream_serve [--n N] [--batches B] [--arrivals A] \
                 [--extra-edges E] [--drift D] [--churn F] [--k K] [--eps EPS] [--seed S] \
                 [--threads T] [--readers R] [--compact-slack S] [--json-out FILE] \
                 [--metrics-out FILE] [--check-against BASELINE] [--max-regress FRAC]"
            );
            return ExitCode::FAILURE;
        }
    };
    let total_n = args.n + args.batches * args.arrivals;
    println!(
        "stream_serve: n={} (+<={} arrivals/batch x {} batches), k={}, eps={}, threads={}, \
         readers={}, churn={}",
        args.n,
        args.arrivals,
        args.batches,
        args.k,
        args.eps,
        args.threads,
        args.readers,
        args.churn
    );

    let mut rng = StdRng::seed_from_u64(args.seed);
    let cg = gen::community_graph(&gen::CommunityGraphConfig::social(total_n), &mut rng);
    let full = cg.graph;
    let prefix: Vec<u32> = (0..args.n as u32).collect();
    let boot = InducedSubgraph::extract(&full, &prefix);
    let boot_weights = VertexWeights::vertex_edge(&boot.graph);

    let mut cfg = StreamConfig::new(args.k, args.eps).with_threads(args.threads);
    cfg.gd = GdConfig {
        iterations: 60,
        threads: args.threads,
        ..GdConfig::with_epsilon(args.eps)
    };
    cfg.seed = args.seed;
    cfg.compact_slack = args.compact_slack;
    let gd_cfg = cfg.gd.clone();

    let (sp, boot_time) = timed(|| {
        StreamingPartitioner::bootstrap(boot.graph.clone(), boot_weights, cfg)
            .expect("bootstrap partition failed")
    });
    let mut sp = sp;
    println!(
        "bootstrap: {:.2}s, locality {:.1}%, imbalance {:.2}%\n",
        boot_time.as_secs_f64(),
        sp.store().edge_locality() * 100.0,
        sp.max_imbalance() * 100.0
    );

    let mut table = Table::new(["batch", "shape", "inc ms", "imb %", "remaps", "lookups"]);
    let mut inc_total = Duration::ZERO;
    let mut eps_ok = true;
    let mut arrived = args.n as u32;
    let mut tracker = IdTracker::identity(args.n);
    let mut batch_perf: Vec<BatchPerf> = Vec::with_capacity(args.batches);

    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let handles: Vec<_> = (0..args.readers).map(|_| sp.reader()).collect();
    let serve_start = Instant::now();
    let mut serve_secs = 0.0f64;

    std::thread::scope(|scope| {
        for (t, mut h) in handles.into_iter().enumerate() {
            let stop = &stop;
            let torn = &torn;
            scope.spawn(move || {
                // Cheap thread-local id sampler; the reader draws targets
                // from its *pinned* view's own id space, so resampling
                // after an epoch switch is automatic.
                let mut lcg = 0x2545_F491_4F6C_DD1Du64.wrapping_add(t as u64);
                while !stop.load(Ordering::Relaxed) {
                    if h.refresh() {
                        if !h.view().verify_checksum() {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        if h.needs_adoption() {
                            h.adopt();
                        }
                    }
                    let n = h.view().num_vertices();
                    for _ in 0..64 {
                        lcg = lcg
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if n > 0 {
                            let v = ((lcg >> 33) as usize % n) as u32;
                            // Tombstoned ids answer None; both are valid.
                            let _ = h.lookup(v);
                        }
                    }
                }
            });
        }

        let result = (|| -> Result<(), String> {
            for batch_no in 1..=args.batches {
                // Even batches grow; odd batches shrink. Arrivals recycle
                // tombstoned ids before extending the id space, so only a
                // batch whose removals exceed its arrivals leaves
                // tombstones for the compaction to purge — the shrinking
                // batches are what drives the serve path across epochs.
                let shrink = batch_no % 2 == 1;
                let n_arrivals = if shrink {
                    args.arrivals / 8
                } else {
                    args.arrivals
                };
                let vertex_removals = if shrink {
                    n_arrivals + args.arrivals / 2
                } else {
                    (args.arrivals as f64 * args.churn) as usize
                };
                let edge_removals = (args.extra_edges as f64 * args.churn) as usize;

                let mut batch = UpdateBatch::new();
                let end = arrived + n_arrivals as u32;
                let predicted = predict_arrival_ids(sp.graph(), n_arrivals);
                for v in arrived..end {
                    let backward: Vec<u32> = full
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&u| u < v)
                        .filter_map(|u| tracker.current(u))
                        .collect();
                    let degree_weight = backward.len().max(1) as f64;
                    batch.add_vertex(vec![1.0, degree_weight], backward);
                    tracker.push(predicted[(v - arrived) as usize]);
                }
                for _ in 0..args.extra_edges {
                    let u = tracker.current(rng.gen_range(0..arrived));
                    let v = tracker.current(rng.gen_range(0..arrived));
                    if let (Some(u), Some(v)) = (u, v) {
                        batch.add_edge(u, v);
                    }
                }
                if args.drift > 0 {
                    let shard0: Vec<u32> = (0..arrived)
                        .filter_map(|o| tracker.current(o))
                        .filter(|&c| sp.shard_of(c) == 0)
                        .collect();
                    if shard0.is_empty() {
                        return Err("shard 0 is empty; cannot apply the drift spike".into());
                    }
                    for _ in 0..args.drift {
                        let v = shard0[rng.gen_range(0..shard0.len())];
                        batch.set_weight(v, 0, rng.gen_range(1.5..3.0));
                    }
                }
                queue_removals(
                    &mut batch,
                    sp.graph(),
                    &mut tracker,
                    &mut rng,
                    edge_removals,
                    vertex_removals,
                );
                arrived = end;

                let (report, inc_time) = timed(|| sp.ingest(&batch).expect("ingest failed"));
                inc_total += inc_time;
                if report.max_imbalance > args.eps + 1e-9 {
                    eps_ok = false;
                }
                if let Some(remap) = &report.remap {
                    tracker.apply_remap(remap);
                }
                verify_arrival_ids(&tracker, end, &report.arrival_ids)?;

                batch_perf.push(BatchPerf {
                    batch: batch_no,
                    inc_ms: inc_time.as_secs_f64() * 1e3,
                    // The serve leg runs one scratch solve after the final
                    // batch (the machine-normalization anchor), not one
                    // per batch; the total lands on the record below.
                    scratch_ms: 0.0,
                    cut_edges: sp.store().cut_edges(),
                    imbalance: report.max_imbalance,
                    locality: report.edge_locality,
                });
                table.row([
                    format!("{batch_no}"),
                    (if shrink { "shrink" } else { "grow" }).to_string(),
                    format!("{:.1}", inc_time.as_secs_f64() * 1e3),
                    format!("{:.2}", report.max_imbalance * 100.0),
                    format!("{}", sp.telemetry().remaps),
                    format!("{}", sp.store().lookup_count()),
                ]);
            }
            Ok(())
        })();
        serve_secs = serve_start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        if let Err(e) = result {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    });
    println!("{table}");

    // Same-machine normalization anchor: one scratch GD solve of the
    // final live graph, exactly the solver the ingest path replaces.
    let (snapshot, weights, _) = sp.graph().live_snapshot();
    let (scratch, scratch_time) = timed(|| {
        GdPartitioner::new(gd_cfg.clone())
            .partition(&snapshot, &weights, args.k, args.seed + 1)
            .expect("scratch partition failed")
    });
    if let Some(last) = batch_perf.last_mut() {
        last.scratch_ms = scratch_time.as_secs_f64() * 1e3;
    }

    let t = sp.telemetry().clone();
    let lookups = sp.store().lookup_count();
    let stale = sp.store().stale_epoch_read_count();
    let torn = torn.load(Ordering::Relaxed);
    let lookups_per_sec = lookups as f64 / serve_secs.max(1e-9);
    let m = sp.metrics();
    let lookup_p99_us = m
        .summary("stream.store.lookup_us")
        .map(|s| s.p99 as f64)
        .unwrap_or(0.0);
    println!(
        "serving: {lookups} lookups over {serve_secs:.2}s across {} readers \
         -> {:.0} lookups/s, p99 {lookup_p99_us:.0} µs",
        args.readers, lookups_per_sec
    );
    println!(
        "churn: {} placed, {} removed, {} compactions ({} remaps), {} view swaps, \
         {} stale-epoch reads, {torn} torn reads",
        t.vertices_placed,
        t.vertices_removed,
        t.compactions,
        t.remaps,
        sp.store().view_swap_count(),
        stale
    );

    let record = PerfRecord {
        threads: args.threads,
        churn: args.churn,
        inc_total_ms: inc_total.as_secs_f64() * 1e3,
        scratch_total_ms: scratch_time.as_secs_f64() * 1e3,
        speedup: scratch_time.as_secs_f64() / inc_total.as_secs_f64().max(1e-9),
        eps_ok,
        final_locality: sp.store().edge_locality(),
        final_imbalance: sp.max_imbalance(),
        validate_total_ms: 0.0,
        split_total_ms: 0.0,
        place_total_ms: 0.0,
        repair_total_ms: 0.0,
        commit_total_ms: 0.0,
        refine_total_ms: 0.0,
        placement_conflicts: Some(t.placement_conflicts),
        repair_passes: Some(t.repair_passes),
        rebalance_full_scans: Some(t.rebalance_full_scans),
        snapshot_save_total_ms: 0.0,
        snapshot_restore_total_ms: 0.0,
        snapshots: None,
        quantiles: {
            let m = sp.metrics();
            let stage_p99_ms = |name: &str| {
                m.summary(name)
                    .map(|s| s.p99 as f64 / 1000.0)
                    .unwrap_or(0.0)
            };
            let iters = m.summary("core.gd.refine_iterations");
            Some(PerfQuantiles {
                refine_iters_p50: iters.as_ref().map(|s| s.p50 as f64).unwrap_or(0.0),
                refine_iters_p99: iters.as_ref().map(|s| s.p99 as f64).unwrap_or(0.0),
                validate_p99_ms: stage_p99_ms("span.ingest.validate_us"),
                split_p99_ms: stage_p99_ms("span.ingest.split_us"),
                place_p99_ms: stage_p99_ms("span.ingest.place_us"),
                repair_p99_ms: stage_p99_ms("span.ingest.repair_us"),
                commit_p99_ms: stage_p99_ms("span.ingest.commit_us"),
                refine_p99_ms: stage_p99_ms("span.ingest.refine_us"),
            })
        },
        gd_full_recomputes: Some(sp.metrics().counter("core.gd.grad_full_recomputes") as usize),
        gd_delta_iters: Some(sp.metrics().counter("core.gd.grad_delta_iters") as usize),
        lookups_per_sec: Some(lookups_per_sec),
        lookup_p99_us: Some(lookup_p99_us),
        split_parallel_ranges: Some(sp.metrics().counter("stream.split.parallel_ranges") as usize),
        repair_spec_rounds: Some(sp.metrics().counter("stream.repair.spec_rounds") as usize),
        compact_parallel_ms: sp.metrics().gauge("stream.compact.parallel_ms"),
        replay_total_ms: 0.0,
        replay_batches: None,
        log_bytes: None,
        log_rotations: None,
        followers: None,
        batches: batch_perf,
    };
    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, record.to_json()) {
            eprintln!("FAIL: cannot write --json-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote perf record -> {path}");
    }
    if let Some(path) = &args.metrics_out {
        let dump = if path.ends_with(".prom") || path.ends_with(".txt") {
            sp.metrics().render_text()
        } else {
            sp.metrics().render_json()
        };
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("FAIL: cannot write --metrics-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics dump -> {path}");
    }

    // Acceptance: the leg must actually have crossed epochs under load,
    // cleanly. The scratch partition itself is only the timing anchor,
    // but sanity-check it balanced.
    let mut failed = false;
    if !eps_ok {
        eprintln!("FAIL: incremental path violated ε");
        failed = true;
    }
    if scratch.max_imbalance(&weights) > args.eps + 1e-9 {
        eprintln!("FAIL: scratch reference solve violated ε");
        failed = true;
    }
    if t.remaps < 2 {
        eprintln!(
            "FAIL: run crossed only {} purges (need >= 2) — not a cross-epoch serving test",
            t.remaps
        );
        failed = true;
    }
    if torn > 0 {
        eprintln!("FAIL: {torn} torn view reads (checksum mismatches)");
        failed = true;
    }
    if stale > 0 {
        eprintln!("FAIL: {stale} lookups served across an unadopted epoch");
        failed = true;
    }
    if lookups == 0 {
        eprintln!("FAIL: readers served no lookups");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }

    if let Some(path) = &args.check_against {
        let baseline = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| PerfRecord::from_json(&text))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: cannot load baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_regression(&record, &baseline, args.max_regress) {
            Ok(()) => println!(
                "perf gate: lookup p99 {:.0} µs vs baseline {:.0} µs — within limits",
                lookup_p99_us,
                baseline.lookup_p99_us.unwrap_or(0.0)
            ),
            Err(reasons) => {
                eprintln!("FAIL: perf gate: {reasons}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "PASS: ε held, {} purges crossed, 0 torn / 0 stale-epoch reads, \
         {:.0} lookups/s at p99 {lookup_p99_us:.0} µs",
        t.remaps, lookups_per_sec
    );
    ExitCode::SUCCESS
}
