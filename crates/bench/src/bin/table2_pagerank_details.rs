//! Table 2: impact of the partitioning policy on per-worker runtime and
//! communication for PageRank on the FB-400B proxy across 128 workers
//! (averages over the job's supersteps).
//!
//! Paper result to reproduce: one-dimensional policies have the largest
//! max−mean gap (stragglers); vertex-edge has the tightest runtime spread
//! (max ≈ mean) and cuts communication several-fold versus hash while
//! keeping its stdev small.

use mdbgp_bench::datasets;
use mdbgp_bench::policies::Policy;
use mdbgp_bench::table::Table;
use mdbgp_bsp::{apps::PageRank, BspEngine, CostModel};

fn main() {
    const WORKERS: usize = 128;
    let data = datasets::fb(2);
    println!(
        "Table 2 — PageRank on {} ({} vertices / {} edges), {} workers, 30 iterations\n",
        data.name,
        data.graph.num_vertices(),
        data.graph.num_edges(),
        WORKERS
    );

    let mut table = Table::new([
        "partitioning",
        "runtime mean",
        "runtime max",
        "runtime stdev",
        "comm MB mean",
        "comm MB max",
        "comm MB stdev",
    ]);

    for policy in Policy::all() {
        let partition = policy
            .partition(&data.graph, WORKERS, 0.03, 23)
            .unwrap_or_else(|e| panic!("{} failed: {e}", policy.name()));
        let engine = BspEngine::new(&data.graph, &partition, CostModel::default());
        let (stats, _) = engine.run(&PageRank::default());
        let (rt_mean, rt_max, rt_std) = stats.runtime_summary();
        let (cm_mean, cm_max, cm_std) = stats.communication_summary();
        const MB: f64 = 1024.0 * 1024.0;
        table.row([
            policy.name().to_string(),
            format!("{rt_mean:.0}"),
            format!("{rt_max:.0}"),
            format!("{rt_std:.0}"),
            format!("{:.2}", cm_mean / MB),
            format!("{:.2}", cm_max / MB),
            format!("{:.2}", cm_std / MB),
        ]);
    }
    println!("{table}");
    println!(
        "Runtime is in cost-model units (per-superstep, averaged over 31\n\
         supersteps); communication is per-worker remote traffic over the\n\
         whole job. Paper's shape: vertex/edge have large max−mean gaps\n\
         (idling workers); vertex-edge has max ≈ mean and low comm stdev."
    );
}
