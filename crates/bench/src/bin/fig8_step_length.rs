//! Figure 8: GD convergence under fixed step lengths
//! `{10, 5, 2, 1}·ξ` with `ξ = √n/100`, on the LiveJournal and Orkut
//! proxies (100 iterations, vertex+degree balance).
//!
//! Paper result to reproduce: step length `2·ξ` converges to the best
//! locality; `10·ξ` overshoots and plateaus low; `1·ξ` is too slow to
//! finish in 100 iterations.

use mdbgp_bench::curves::{print_locality_curves, run_curve};
use mdbgp_bench::datasets;
use mdbgp_core::{GdConfig, StepSchedule};

fn main() {
    println!("Figure 8 — fixed-step-length comparison, 100 iterations, ξ = √n/100");
    for data in [datasets::lj(), datasets::orkut()] {
        let curves: Vec<_> = [10.0, 5.0, 2.0, 1.0]
            .into_iter()
            .map(|factor| {
                let cfg = GdConfig {
                    iterations: 100,
                    step: StepSchedule::FixedLength { factor },
                    // Isolate the step-size effect as in the paper's figure.
                    fixing_threshold: None,
                    ..GdConfig::with_epsilon(0.03)
                };
                run_curve(&data, cfg, 29, &format!("step {factor}ξ"))
            })
            .collect();
        print_locality_curves(data.name, &curves, 10);
    }
    println!("Paper's shape: 2ξ ends highest; 10ξ is fast but plateaus lower;");
    println!("1ξ is still climbing when the iteration budget runs out.");
}
