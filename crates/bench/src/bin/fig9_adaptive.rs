//! Figure 9: the §3.2 implementation details ablated — (1) nonadaptive
//! (constant γ), (2) adaptive step size, (3) adaptive + vertex fixing —
//! on the LiveJournal and Orkut proxies. Both panels: edge locality and
//! maximum fractional imbalance per iteration.
//!
//! Paper result to reproduce: adaptive + fixing reaches the best locality
//! *and* holds near-perfect balance throughout, while the other variants
//! accumulate imbalance that must be repaired at the end (the curves'
//! final-iteration jump).

use mdbgp_bench::curves::{print_imbalance_curves, print_locality_curves, run_curve, Curve};
use mdbgp_bench::datasets::{self, Dataset};
use mdbgp_core::{GdConfig, StepSchedule};

fn variants(data: &Dataset) -> Vec<Curve> {
    let base = GdConfig {
        iterations: 100,
        ..GdConfig::with_epsilon(0.03)
    };
    // Constant γ chosen like a practitioner would without adaptivity:
    // scaled by 1/mean_degree (the gradient's natural magnitude), large
    // enough to escape the origin within the budget. The point of the
    // figure is that no constant matches the adaptive schedule.
    let gamma = 0.05 / data.graph.mean_degree();
    vec![
        run_curve(
            data,
            GdConfig {
                step: StepSchedule::Constant { gamma },
                fixing_threshold: None,
                ..base.clone()
            },
            31,
            "nonadaptive",
        ),
        run_curve(
            data,
            GdConfig {
                fixing_threshold: None,
                ..base.clone()
            },
            31,
            "adaptive",
        ),
        run_curve(data, base, 31, "adaptive+fixing"),
    ]
}

fn main() {
    println!("Figure 9 — adaptive step size and vertex fixing ablation");
    for data in [datasets::lj(), datasets::orkut()] {
        let curves = variants(&data);
        print_locality_curves(data.name, &curves, 10);
        print_imbalance_curves(data.name, &curves, 10);
    }
    println!("Paper's shape: adaptive+fixing wins on locality and keeps the");
    println!("imbalance curve pinned near zero for the whole run.");
}
