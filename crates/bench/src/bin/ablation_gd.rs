//! Ablations of GD's design choices beyond the paper's own Figures 8–10:
//!
//! 1. **ε sweep** — the locality/balance trade-off the paper exercises at
//!    three points in Figure 10, swept densely;
//! 2. **rounding attempts** — how much the best-of-r randomized rounding
//!    plus greedy repair buys over a single rounding;
//! 3. **threads** — Theorem 1.1's `O(|E|/m)` gradient term on a shared-
//!    memory stand-in for the paper's distributed implementation.

use mdbgp_bench::datasets;
use mdbgp_bench::policies::timed;
use mdbgp_bench::table::{pct, Table};
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::Partitioner;

fn main() {
    let data = datasets::lj();
    let weights = data.vertex_edge_weights();
    println!(
        "GD ablations on {} ({} vertices / {} edges, k = 8)\n",
        data.name,
        data.graph.num_vertices(),
        data.graph.num_edges()
    );

    // --- 1. ε sweep. ---
    let mut t = Table::new(["epsilon", "locality %", "max imbalance %"]);
    for eps in [0.001, 0.005, 0.01, 0.03, 0.05, 0.1, 0.2] {
        let gd = GdPartitioner::new(GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(eps)
        });
        let p = gd.partition(&data.graph, &weights, 8, 3).expect("gd");
        t.row([
            format!("{eps}"),
            pct(p.edge_locality(&data.graph)),
            pct(p.max_imbalance(&weights)),
        ]);
    }
    println!("ε sweep (looser balance buys locality, and every run stays within its ε):");
    println!("{t}");

    // --- 2. Rounding attempts. ---
    let mut t = Table::new(["attempts", "locality %", "max imbalance %"]);
    for attempts in [1usize, 2, 8, 32] {
        let gd = GdPartitioner::new(GdConfig {
            iterations: 60,
            rounding_attempts: attempts,
            ..GdConfig::with_epsilon(0.03)
        });
        let p = gd.partition(&data.graph, &weights, 8, 3).expect("gd");
        t.row([
            attempts.to_string(),
            pct(p.edge_locality(&data.graph)),
            pct(p.max_imbalance(&weights)),
        ]);
    }
    println!("rounding attempts (repair makes even a single attempt safe):");
    println!("{t}");

    // --- 3. Threads. ---
    let mut t = Table::new(["threads", "wall time s", "speedup"]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let gd = GdPartitioner::new(GdConfig {
            iterations: 60,
            threads,
            ..GdConfig::with_epsilon(0.03)
        });
        let (_, d) = timed(|| gd.partition(&data.graph, &weights, 8, 3).expect("gd"));
        let secs = d.as_secs_f64();
        let speedup = match base {
            None => {
                base = Some(secs);
                1.0
            }
            Some(b) => b / secs,
        };
        t.row([
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("gradient threads (the projection and bookkeeping stay sequential,");
    println!("so Amdahl caps the speedup well below linear at this scale):");
    println!("{t}");
}
