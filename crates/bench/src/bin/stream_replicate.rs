//! `stream_replicate` — replicated-serving bench: one
//! [`mdbgp_stream::Leader`] ingests churn-heavy update batches while
//! `--followers F` in-process [`mdbgp_stream::Follower`]s bootstrap from
//! its shipped snapshot, tail the batch log record-by-record, publish
//! their own [`mdbgp_stream::ReadView`]s, and serve lookups from them —
//! across purging compactions and `--rotate-every` log rotations.
//!
//! Scenario: the same grow/shrink shape as `stream_serve` — even batches
//! grow (full `--arrivals` plus extra edges and a hot-shard drift
//! spike), odd batches shrink (arrivals cut to an eighth, removals above
//! the arrival count) so tombstones survive arrival-id recycling and the
//! tight `--compact-slack` forces purging compactions *inside ingest*,
//! where the log can replay them. After every leader batch each follower
//! replays the new log record, its published view is checked against the
//! leader's stamp (`(id_epoch, batch_seq)` + view checksum, then the
//! full assignment byte-for-byte), and it serves a burst of lookups
//! through its own [`mdbgp_stream::ReadHandle`] — verifying checksums
//! and adopting epochs exactly like a remote replica would.
//!
//! The run fails (non-zero exit) if the leader violates ε, if fewer than
//! two purges happened (the log would not be covering remaps), if no
//! rotation happened, if any follower diverges from the leader's stamp
//! stream or assignment, if any follower saw a torn view, or if the
//! followers' own stamp streams disagree with each other.
//!
//! CI hooks: `--json-out FILE` dumps a v8 perf record carrying the
//! replay-lag fields (`replay_total_ms`, `replay_batches`, `log_bytes`,
//! `log_rotations`, `followers`); `--check-against BASELINE` gates it
//! against the committed `BENCH_stream_replicate.json` — replay lag is
//! machine-normalized against a same-process scratch GD solve of the
//! final graph, like every other wall-clock gate (see
//! [`mdbgp_bench::perfgate`]). `--stamps-out PREFIX` writes one
//! `PREFIX.leader.txt` plus one `PREFIX.fI.txt` per follower, each line
//! `id_epoch batch_seq checksum` for one applied batch, so CI can diff
//! the streams byte-for-byte. `--metrics-det-out PREFIX` writes each
//! follower's deterministic metrics dump (`PREFIX.fI.json`) — followers
//! replay identical records, so the dumps must be byte-identical
//! follower-to-follower (the *leader's* registry legitimately differs:
//! it carries the bootstrap GD counters and the leader-only `stream.log`
//! counters). `--metrics-out PREFIX` writes full dumps for the leader
//! and follower 0 (`PREFIX.leader.json`, `PREFIX.f0.json`) for
//! `metrics_check` schema validation.

use mdbgp_bench::churn::{predict_arrival_ids, queue_removals, verify_arrival_ids, IdTracker};
use mdbgp_bench::perfgate::{check_regression, BatchPerf, PerfQuantiles, PerfRecord};
use mdbgp_bench::policies::timed;
use mdbgp_bench::table::Table;
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::{gen, InducedSubgraph, Partitioner, VertexWeights};
use mdbgp_stream::{Follower, Leader, StreamConfig, StreamingPartitioner, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    n: usize,
    batches: usize,
    arrivals: usize,
    extra_edges: usize,
    drift: usize,
    churn: f64,
    k: usize,
    eps: f64,
    seed: u64,
    threads: usize,
    followers: usize,
    rotate_every: usize,
    compact_slack: f64,
    json_out: Option<String>,
    stamps_out: Option<String>,
    metrics_out: Option<String>,
    metrics_det_out: Option<String>,
    check_against: Option<String>,
    max_regress: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut map = HashMap::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    let num = |key: &str, default: usize| -> Result<usize, String> {
        map.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'"))
        })
    };
    let fnum = |key: &str, default: f64| -> Result<f64, String> {
        map.get(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'"))
        })
    };
    Ok(Args {
        n: num("n", 20_000)?,
        batches: num("batches", 8)?,
        arrivals: num("arrivals", 400)?,
        extra_edges: num("extra-edges", 400)?,
        drift: num("drift", 120)?,
        churn: match fnum("churn", 0.4)? {
            c if (0.0..1.0).contains(&c) => c,
            c => return Err(format!("--churn must be in [0, 1), got {c}")),
        },
        k: num("k", 8)?,
        eps: fnum("eps", 0.05)?,
        seed: num("seed", 42)? as u64,
        threads: match num("threads", 1)? {
            0 => return Err("--threads must be positive".into()),
            t => t,
        },
        followers: match num("followers", 2)? {
            0 => return Err("--followers must be positive".into()),
            f => f,
        },
        rotate_every: match num("rotate-every", 4)? {
            0 => return Err("--rotate-every must be positive".into()),
            r => r,
        },
        // Tight by default: the leg exists to replicate *across purges*,
        // so compactions must fire on the shrinking batches.
        compact_slack: fnum("compact-slack", 0.05)?,
        json_out: map.get("json-out").cloned(),
        stamps_out: map.get("stamps-out").cloned(),
        metrics_out: map.get("metrics-out").cloned(),
        metrics_det_out: map.get("metrics-det-out").cloned(),
        check_against: map.get("check-against").cloned(),
        max_regress: fnum("max-regress", 0.30)?,
    })
}

/// One replica plus its bench-side bookkeeping: the serving handle, the
/// stamp stream it published, and how long its replays took.
struct Replica {
    follower: Follower,
    stamps: Vec<(u64, u64, u64)>,
    replay_time: Duration,
    torn: u64,
    lookups: u64,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: stream_replicate [--n N] [--batches B] [--arrivals A] \
                 [--extra-edges E] [--drift D] [--churn F] [--k K] [--eps EPS] [--seed S] \
                 [--threads T] [--followers F] [--rotate-every R] [--compact-slack S] \
                 [--json-out FILE] [--stamps-out PREFIX] [--metrics-out PREFIX] \
                 [--metrics-det-out PREFIX] [--check-against BASELINE] [--max-regress FRAC]"
            );
            return ExitCode::FAILURE;
        }
    };
    let total_n = args.n + args.batches * args.arrivals;
    println!(
        "stream_replicate: n={} (+<={} arrivals/batch x {} batches), k={}, eps={}, threads={}, \
         followers={}, churn={}, rotate every {}",
        args.n,
        args.arrivals,
        args.batches,
        args.k,
        args.eps,
        args.threads,
        args.followers,
        args.churn,
        args.rotate_every
    );

    let mut rng = StdRng::seed_from_u64(args.seed);
    let cg = gen::community_graph(&gen::CommunityGraphConfig::social(total_n), &mut rng);
    let full = cg.graph;
    let prefix: Vec<u32> = (0..args.n as u32).collect();
    let boot = InducedSubgraph::extract(&full, &prefix);
    let boot_weights = VertexWeights::vertex_edge(&boot.graph);

    let mut cfg = StreamConfig::new(args.k, args.eps).with_threads(args.threads);
    cfg.gd = GdConfig {
        iterations: 60,
        threads: args.threads,
        ..GdConfig::with_epsilon(args.eps)
    };
    cfg.seed = args.seed;
    cfg.compact_slack = args.compact_slack;
    let gd_cfg = cfg.gd.clone();

    let (sp, boot_time) = timed(|| {
        StreamingPartitioner::bootstrap(boot.graph.clone(), boot_weights, cfg)
            .expect("bootstrap partition failed")
    });
    let mut leader = match Leader::new(sp) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("FAIL: cannot open the leader's first log segment: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bootstrap: {:.2}s, locality {:.1}%, imbalance {:.2}%, snapshot {} bytes",
        boot_time.as_secs_f64(),
        leader.engine().store().edge_locality() * 100.0,
        leader.engine().max_imbalance() * 100.0,
        leader.snapshot_bytes().len()
    );

    // Every follower bootstraps from the leader's shipped segment-base
    // snapshot — the same bytes a remote replica would receive.
    let mut replicas: Vec<Replica> = Vec::with_capacity(args.followers);
    for i in 0..args.followers {
        match Follower::bootstrap(leader.snapshot_bytes()) {
            Ok(follower) => replicas.push(Replica {
                follower,
                stamps: Vec::with_capacity(args.batches),
                replay_time: Duration::ZERO,
                torn: 0,
                lookups: 0,
            }),
            Err(e) => {
                eprintln!("FAIL: follower {i} bootstrap: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut handles: Vec<_> = replicas.iter().map(|r| r.follower.reader()).collect();
    println!();

    let mut table = Table::new(["batch", "shape", "inc ms", "replay ms", "imb %", "log KB"]);
    let mut inc_total = Duration::ZERO;
    let mut eps_ok = true;
    let mut arrived = args.n as u32;
    let mut tracker = IdTracker::identity(args.n);
    let mut batch_perf: Vec<BatchPerf> = Vec::with_capacity(args.batches);
    let mut leader_stamps: Vec<(u64, u64, u64)> = Vec::with_capacity(args.batches);
    let mut total_log_bytes = 0usize;

    let result = (|| -> Result<(), String> {
        for batch_no in 1..=args.batches {
            // Even batches grow; odd batches shrink enough that tombstones
            // outlive the batch's own arrival-id recycling — the shrinking
            // batches are what drives replication across purges.
            let shrink = batch_no % 2 == 1;
            let n_arrivals = if shrink {
                args.arrivals / 8
            } else {
                args.arrivals
            };
            let vertex_removals = if shrink {
                n_arrivals + args.arrivals / 2
            } else {
                (args.arrivals as f64 * args.churn) as usize
            };
            let edge_removals = (args.extra_edges as f64 * args.churn) as usize;

            let mut batch = UpdateBatch::new();
            let end = arrived + n_arrivals as u32;
            let predicted = predict_arrival_ids(leader.engine().graph(), n_arrivals);
            for v in arrived..end {
                let backward: Vec<u32> = full
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| u < v)
                    .filter_map(|u| tracker.current(u))
                    .collect();
                let degree_weight = backward.len().max(1) as f64;
                batch.add_vertex(vec![1.0, degree_weight], backward);
                tracker.push(predicted[(v - arrived) as usize]);
            }
            for _ in 0..args.extra_edges {
                let u = tracker.current(rng.gen_range(0..arrived));
                let v = tracker.current(rng.gen_range(0..arrived));
                if let (Some(u), Some(v)) = (u, v) {
                    batch.add_edge(u, v);
                }
            }
            if args.drift > 0 {
                let shard0: Vec<u32> = (0..arrived)
                    .filter_map(|o| tracker.current(o))
                    .filter(|&c| leader.engine().shard_of(c) == 0)
                    .collect();
                if shard0.is_empty() {
                    return Err("shard 0 is empty; cannot apply the drift spike".into());
                }
                for _ in 0..args.drift {
                    let v = shard0[rng.gen_range(0..shard0.len())];
                    batch.set_weight(v, 0, rng.gen_range(1.5..3.0));
                }
            }
            queue_removals(
                &mut batch,
                leader.engine().graph(),
                &mut tracker,
                &mut rng,
                edge_removals,
                vertex_removals,
            );
            arrived = end;

            let (report, inc_time) = timed(|| leader.ingest(&batch).expect("leader ingest failed"));
            inc_total += inc_time;
            if report.max_imbalance > args.eps + 1e-9 {
                eps_ok = false;
            }
            if let Some(remap) = &report.remap {
                tracker.apply_remap(remap);
            }
            verify_arrival_ids(&tracker, end, &report.arrival_ids)?;
            let lv = leader.engine().read_view();
            leader_stamps.push((lv.epoch().id_epoch, lv.epoch().batch_seq, lv.checksum()));

            // Followers tail the segment: each replay re-reads the log
            // from the segment header (skipping already-applied stamps,
            // as a resumed tailer would) and must apply exactly the one
            // new record.
            let mut replay_ms = 0.0f64;
            for (i, r) in replicas.iter_mut().enumerate() {
                let (applied, t) = timed(|| r.follower.replay(leader.log_bytes()));
                r.replay_time += t;
                replay_ms += t.as_secs_f64() * 1e3;
                match applied {
                    Ok(1) => {}
                    Ok(n) => return Err(format!("follower {i} applied {n} records, wanted 1")),
                    Err(e) => return Err(format!("follower {i} replay: {e}")),
                }
                let fv = r.follower.view();
                if fv.epoch() != lv.epoch() || fv.checksum() != lv.checksum() {
                    return Err(format!(
                        "follower {i} diverged at batch {batch_no}: ({}, {}) checksum \
                         {:#018x} vs leader ({}, {}) {:#018x}",
                        fv.epoch().id_epoch,
                        fv.epoch().batch_seq,
                        fv.checksum(),
                        lv.epoch().id_epoch,
                        lv.epoch().batch_seq,
                        lv.checksum()
                    ));
                }
                r.stamps
                    .push((fv.epoch().id_epoch, fv.epoch().batch_seq, fv.checksum()));

                // Serve a lookup burst from the follower's own published
                // view, through the same pin/verify/adopt protocol a
                // remote serving thread runs.
                let h = &mut handles[i];
                if h.refresh() {
                    if !h.view().verify_checksum() {
                        r.torn += 1;
                    }
                    if h.needs_adoption() {
                        h.adopt();
                    }
                }
                let n = h.view().num_vertices();
                let mut lcg = 0x2545_F491_4F6C_DD1Du64.wrapping_add(batch_no as u64);
                for _ in 0..256 {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if n > 0 {
                        let v = ((lcg >> 33) as usize % n) as u32;
                        // Tombstoned ids answer None; both are valid.
                        let _ = h.lookup(v);
                        r.lookups += 1;
                    }
                }
            }

            batch_perf.push(BatchPerf {
                batch: batch_no,
                inc_ms: inc_time.as_secs_f64() * 1e3,
                // One scratch solve after the final batch anchors the
                // machine normalization; per-batch slots stay 0.
                scratch_ms: 0.0,
                cut_edges: leader.engine().store().cut_edges(),
                imbalance: report.max_imbalance,
                locality: report.edge_locality,
            });
            table.row([
                format!("{batch_no}"),
                (if shrink { "shrink" } else { "grow" }).to_string(),
                format!("{:.1}", inc_time.as_secs_f64() * 1e3),
                format!("{replay_ms:.1}"),
                format!("{:.2}", report.max_imbalance * 100.0),
                format!("{:.1}", leader.log_bytes().len() as f64 / 1024.0),
            ]);

            // Rotate after the tailers caught up, as a real retention
            // policy would ensure; followers adopt the fresh segment (and
            // canonicalize their heaps) on their next replay.
            if batch_no % args.rotate_every == 0 {
                total_log_bytes += leader.log_bytes().len();
                if let Err(e) = leader.rotate() {
                    return Err(format!("log rotation after batch {batch_no}: {e}"));
                }
            }
        }
        total_log_bytes += leader.log_bytes().len();

        // Final byte-level check: every follower's full assignment must
        // equal the leader's, not just the stamps.
        let lv = leader.engine().read_view();
        for (i, r) in replicas.iter().enumerate() {
            if r.follower.view().as_slice() != lv.as_slice() {
                return Err(format!(
                    "follower {i} assignment differs from the leader's despite matching stamps"
                ));
            }
            if r.stamps != replicas[0].stamps {
                return Err(format!(
                    "follower {i} stamp stream differs from follower 0's"
                ));
            }
        }
        Ok(())
    })();
    if let Err(e) = result {
        eprintln!("FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("{table}");

    // Same-machine normalization anchor: one scratch GD solve of the
    // final live graph, exactly the solver the replay path re-runs.
    let (snapshot, weights, _) = leader.engine().graph().live_snapshot();
    let (scratch, scratch_time) = timed(|| {
        GdPartitioner::new(gd_cfg.clone())
            .partition(&snapshot, &weights, args.k, args.seed + 1)
            .expect("scratch partition failed")
    });
    if let Some(last) = batch_perf.last_mut() {
        last.scratch_ms = scratch_time.as_secs_f64() * 1e3;
    }

    let t = leader.engine().telemetry().clone();
    let replay_total: Duration = replicas.iter().map(|r| r.replay_time).sum();
    let replay_batches: u64 = replicas.iter().map(|r| r.follower.replayed()).sum();
    let torn: u64 = replicas.iter().map(|r| r.torn).sum();
    let lookups: u64 = replicas.iter().map(|r| r.lookups).sum();
    // One &mut pass over the leader's registry collects everything the
    // record needs; `engine()` is read-only on purpose (all mutation
    // flows through the leader), so the scalars are hoisted out here.
    let (log_records, gd_full, gd_delta, split_ranges, spec_rounds, compact_ms, quantiles) = {
        let m = leader.metrics_mut();
        let stage_p99_ms = |name: &str| {
            m.summary(name)
                .map(|s| s.p99 as f64 / 1000.0)
                .unwrap_or(0.0)
        };
        let iters = m.summary("core.gd.refine_iterations");
        (
            m.counter("stream.log.records"),
            m.counter("core.gd.grad_full_recomputes") as usize,
            m.counter("core.gd.grad_delta_iters") as usize,
            m.counter("stream.split.parallel_ranges") as usize,
            m.counter("stream.repair.spec_rounds") as usize,
            m.gauge("stream.compact.parallel_ms"),
            PerfQuantiles {
                refine_iters_p50: iters.as_ref().map(|s| s.p50 as f64).unwrap_or(0.0),
                refine_iters_p99: iters.as_ref().map(|s| s.p99 as f64).unwrap_or(0.0),
                validate_p99_ms: stage_p99_ms("span.ingest.validate_us"),
                split_p99_ms: stage_p99_ms("span.ingest.split_us"),
                place_p99_ms: stage_p99_ms("span.ingest.place_us"),
                repair_p99_ms: stage_p99_ms("span.ingest.repair_us"),
                commit_p99_ms: stage_p99_ms("span.ingest.commit_us"),
                refine_p99_ms: stage_p99_ms("span.ingest.refine_us"),
            },
        )
    };
    println!(
        "replication: {} followers replayed {replay_batches} records in {:.1} ms total \
         (leader ingest {:.1} ms), {} log records / {total_log_bytes} log bytes / {} rotations",
        args.followers,
        replay_total.as_secs_f64() * 1e3,
        inc_total.as_secs_f64() * 1e3,
        log_records,
        leader.rotations()
    );
    println!(
        "churn: {} placed, {} removed, {} compactions ({} remaps); serving: {lookups} \
         follower lookups, {torn} torn reads",
        t.vertices_placed, t.vertices_removed, t.compactions, t.remaps
    );

    let record = PerfRecord {
        threads: args.threads,
        churn: args.churn,
        inc_total_ms: inc_total.as_secs_f64() * 1e3,
        scratch_total_ms: scratch_time.as_secs_f64() * 1e3,
        speedup: scratch_time.as_secs_f64() / inc_total.as_secs_f64().max(1e-9),
        eps_ok,
        final_locality: leader.engine().store().edge_locality(),
        final_imbalance: leader.engine().max_imbalance(),
        validate_total_ms: 0.0,
        split_total_ms: 0.0,
        place_total_ms: 0.0,
        repair_total_ms: 0.0,
        commit_total_ms: 0.0,
        refine_total_ms: 0.0,
        placement_conflicts: Some(t.placement_conflicts),
        repair_passes: Some(t.repair_passes),
        rebalance_full_scans: Some(t.rebalance_full_scans),
        snapshot_save_total_ms: 0.0,
        snapshot_restore_total_ms: 0.0,
        snapshots: None,
        quantiles: Some(quantiles),
        gd_full_recomputes: Some(gd_full),
        gd_delta_iters: Some(gd_delta),
        lookups_per_sec: None,
        lookup_p99_us: None,
        split_parallel_ranges: Some(split_ranges),
        repair_spec_rounds: Some(spec_rounds),
        compact_parallel_ms: compact_ms,
        // v8: the replicated-serving fields this bench exists to record.
        replay_total_ms: replay_total.as_secs_f64() * 1e3,
        replay_batches: Some(replay_batches as usize),
        log_bytes: Some(total_log_bytes),
        log_rotations: Some(leader.rotations() as usize),
        followers: Some(args.followers),
        batches: batch_perf,
    };
    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, record.to_json()) {
            eprintln!("FAIL: cannot write --json-out {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote perf record -> {path}");
    }
    if let Some(prefix) = &args.stamps_out {
        let render = |stamps: &[(u64, u64, u64)]| {
            let mut s = String::new();
            for (id_epoch, batch_seq, checksum) in stamps {
                let _ = writeln!(s, "{id_epoch} {batch_seq} {checksum:#018x}");
            }
            s
        };
        let mut files = vec![(format!("{prefix}.leader.txt"), render(&leader_stamps))];
        for (i, r) in replicas.iter().enumerate() {
            files.push((format!("{prefix}.f{i}.txt"), render(&r.stamps)));
        }
        for (path, text) in files {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("FAIL: cannot write stamp stream {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "wrote stamp streams -> {prefix}.leader.txt + {} follower files",
            replicas.len()
        );
    }
    if let Some(prefix) = &args.metrics_det_out {
        for (i, r) in replicas.iter_mut().enumerate() {
            let path = format!("{prefix}.f{i}.json");
            let dump = r.follower.metrics_mut().deterministic_json();
            if let Err(e) = std::fs::write(&path, dump) {
                eprintln!("FAIL: cannot write --metrics-det-out {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "wrote deterministic follower metric dumps -> {prefix}.f0..{}.json",
            replicas.len() - 1
        );
    }
    if let Some(prefix) = &args.metrics_out {
        let dumps = [
            (
                format!("{prefix}.leader.json"),
                leader.metrics_mut().render_json(),
            ),
            (
                format!("{prefix}.f0.json"),
                replicas[0].follower.metrics_mut().render_json(),
            ),
        ];
        for (path, dump) in dumps {
            if let Err(e) = std::fs::write(&path, dump) {
                eprintln!("FAIL: cannot write --metrics-out {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("wrote metrics dumps -> {prefix}.leader.json, {prefix}.f0.json");
    }

    // Acceptance: the leg must actually have replicated across purges
    // and a rotation, cleanly. The scratch partition is only the timing
    // anchor, but sanity-check it balanced.
    let mut failed = false;
    if !eps_ok {
        eprintln!("FAIL: leader violated ε");
        failed = true;
    }
    if scratch.max_imbalance(&weights) > args.eps + 1e-9 {
        eprintln!("FAIL: scratch reference solve violated ε");
        failed = true;
    }
    if t.remaps < 2 {
        eprintln!(
            "FAIL: run crossed only {} purges (need >= 2) — not a cross-epoch replication test",
            t.remaps
        );
        failed = true;
    }
    if leader.rotations() < 1 {
        eprintln!("FAIL: the log never rotated — segment adoption went untested");
        failed = true;
    }
    if torn > 0 {
        eprintln!("FAIL: {torn} torn follower view reads (checksum mismatches)");
        failed = true;
    }
    if lookups == 0 {
        eprintln!("FAIL: followers served no lookups");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }

    if let Some(path) = &args.check_against {
        let baseline = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| PerfRecord::from_json(&text))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: cannot load baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_regression(&record, &baseline, args.max_regress) {
            Ok(()) => println!(
                "perf gate: replay {:.1} ms vs baseline {:.1} ms — within limits",
                record.replay_total_ms, baseline.replay_total_ms
            ),
            Err(reasons) => {
                eprintln!("FAIL: perf gate: {reasons}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "PASS: {} followers bitwise-tracked the leader across {} purges and {} rotations, \
         replay {:.1} ms vs ingest {:.1} ms, {lookups} lookups / 0 torn reads",
        args.followers,
        t.remaps,
        leader.rotations(),
        replay_total.as_secs_f64() * 1e3,
        inc_total.as_secs_f64() * 1e3
    );
    ExitCode::SUCCESS
}
