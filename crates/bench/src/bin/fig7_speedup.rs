//! Figure 7: speedup of Giraph jobs relative to Hash under vertex, edge
//! and vertex+edge partitioning — PageRank (PR), Connected Components
//! (CC), Hypergraph Clustering (HC) and Mutual Friends (MF), each in a
//! "small" (16-worker) and "large" (128-worker) configuration.
//!
//! Paper result to reproduce: one-dimensional policies regress on several
//! job/size combinations (most severely vertex partitioning at k = 128),
//! while vertex+edge partitioning speeds up every single job.

use mdbgp_bench::datasets::{self, Dataset};
use mdbgp_bench::policies::Policy;
use mdbgp_bench::table::Table;
use mdbgp_bsp::apps::{ConnectedComponents, HypergraphClustering, MutualFriends, PageRank};
use mdbgp_bsp::{BspEngine, CostModel, VertexProgram};

fn job_time<P: VertexProgram>(data: &Dataset, policy: Policy, workers: usize, app: &P) -> f64 {
    let partition = policy
        .partition(&data.graph, workers, 0.03, 17)
        .unwrap_or_else(|e| panic!("{} partition failed: {e}", policy.name()));
    let engine = BspEngine::new(&data.graph, &partition, CostModel::default());
    let (stats, _) = engine.run(app);
    stats.total_time()
}

/// A named job runner: policy in, total modeled runtime out.
type JobRunner<'a> = Box<dyn Fn(Policy) -> f64 + 'a>;

fn main() {
    println!("Figure 7 — Giraph job speedup vs Hash, % (positive = faster)\n");
    let small = datasets::fb(1);
    let large = datasets::fb(2);
    let configs: [(&Dataset, usize, &str); 2] = [(&small, 16, "small"), (&large, 128, "large")];

    let mut table = Table::new(["job", "config", "vertex %", "edge %", "vertex+edge %"]);

    for (data, workers, cfg_name) in configs {
        let apps: Vec<(&str, JobRunner<'_>)> = vec![
            (
                "PR",
                Box::new(|p| job_time(data, p, workers, &PageRank::default())),
            ),
            (
                "CC",
                Box::new(|p| job_time(data, p, workers, &ConnectedComponents::default())),
            ),
            (
                "HC",
                Box::new(|p| job_time(data, p, workers, &HypergraphClustering::default())),
            ),
            (
                "MF",
                Box::new(|p| job_time(data, p, workers, &MutualFriends)),
            ),
        ];
        for (job, run) in apps {
            let base = run(Policy::Hash);
            let speedup = |t: f64| (base / t - 1.0) * 100.0;
            let v = speedup(run(Policy::Vertex));
            let e = speedup(run(Policy::Edge));
            let ve = speedup(run(Policy::VertexEdge));
            table.row([
                job.to_string(),
                format!("{cfg_name} ({workers}w)"),
                format!("{v:+.1}"),
                format!("{e:+.1}"),
                format!("{ve:+.1}"),
            ]);
            println!("{job}-{cfg_name}: hash baseline {base:.0} done");
        }
    }
    println!("\n{table}");
    println!(
        "Paper's shape: one-dimensional columns mix gains and regressions;\n\
         the vertex+edge column is positive everywhere."
    );
}
