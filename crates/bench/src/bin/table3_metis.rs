//! Table 3 (Appendix C): GD versus METIS for multi-dimensional balance,
//! d ∈ {2, 3, 4}, on the LiveJournal, Orkut and sx-stackoverflow proxies.
//! Dimensions: vertices, degrees, sum of neighbour degrees, PageRank.
//!
//! Paper result to reproduce: METIS holds its 0.5% imbalance budget only
//! for d = 2; at d = 3 and 4 its imbalance explodes (up to 38% in the
//! paper) while GD stays within ε on every instance, usually with
//! comparable or better locality.

use mdbgp_baselines::MetisPartitioner;
use mdbgp_bench::datasets;
use mdbgp_bench::policies::{gd_paper, timed};
use mdbgp_bench::table::{pct, Table};
use mdbgp_graph::Partitioner;

fn main() {
    println!("Table 3 — GD vs METIS, multi-dimensional balance (k = 2)\n");
    let metis = MetisPartitioner::default();
    let gd = gd_paper(0.005); // match METIS's 0.5% budget

    let mut table = Table::new([
        "graph",
        "d",
        "GD locality %",
        "METIS locality %",
        "GD max imb %",
        "METIS max imb %",
        "GD mem MB",
        "METIS mem MB",
        "GD time s",
        "METIS time s",
    ]);

    for data in [datasets::lj(), datasets::orkut(), datasets::stackoverflow()] {
        for d in [2usize, 3, 4] {
            let weights = data.weights_d(d);
            let (gd_part, gd_t) = timed(|| gd.partition(&data.graph, &weights, 2, 61).expect("GD"));
            let (metis_out, metis_t) = timed(|| {
                metis
                    .partition_with_stats(&data.graph, &weights, 2, 61)
                    .expect("METIS")
            });
            let (metis_part, metis_stats) = metis_out;

            // Analytic memory estimates: GD holds the graph, the weights,
            // and ~4 n-sized f64 vectors (x, z, gradient, projection);
            // METIS holds the multilevel hierarchy (measured).
            const MB: f64 = 1024.0 * 1024.0;
            let gd_mem = (data.graph.memory_bytes()
                + weights.memory_bytes()
                + 4 * 8 * data.graph.num_vertices()) as f64
                / MB;
            let metis_mem = (data.graph.memory_bytes()
                + weights.memory_bytes()
                + metis_stats.peak_memory_bytes) as f64
                / MB;

            table.row([
                data.name.to_string(),
                d.to_string(),
                pct(gd_part.edge_locality(&data.graph)),
                pct(metis_part.edge_locality(&data.graph)),
                pct(gd_part.max_imbalance(&weights)),
                pct(metis_part.max_imbalance(&weights)),
                format!("{gd_mem:.1}"),
                format!("{metis_mem:.1}"),
                format!("{:.2}", gd_t.as_secs_f64()),
                format!("{:.2}", metis_t.as_secs_f64()),
            ]);
            println!("{} d={d}: done", data.name);
        }
    }
    println!("\n{table}");
    println!(
        "Paper's shape: at d = 2 METIS is competitive (often better\n\
         locality); for d >= 3 METIS's max imbalance blows past its 0.5%\n\
         budget while GD stays within epsilon on every instance."
    );
}
