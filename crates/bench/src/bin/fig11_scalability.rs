//! Figure 11: scalability of GD — running time versus edge count on the
//! FB-proxy size sweep (vertex+edge balance, k = 2, paper configuration).
//!
//! Paper result to reproduce: near-linear growth of the running time with
//! the number of edges (the paper reports machine-hours on a 128-worker
//! cluster; we report single-machine wall seconds on the scaled proxies
//! and check the time-per-edge ratio stays flat).

use mdbgp_bench::datasets;
use mdbgp_bench::policies::{gd_paper, timed};
use mdbgp_bench::table::Table;
use mdbgp_graph::Partitioner;

fn main() {
    println!("Figure 11 — GD running time vs graph size (k = 2, 100 iterations)\n");
    let mut table = Table::new([
        "graph",
        "vertices",
        "edges",
        "time s",
        "us per edge",
        "locality %",
    ]);
    let gd = gd_paper(0.03);
    let mut per_edge: Vec<f64> = Vec::new();
    for data in datasets::fb_sweep() {
        let weights = data.vertex_edge_weights();
        let (partition, t) = timed(|| {
            gd.partition(&data.graph, &weights, 2, 51)
                .expect("partition")
        });
        let m = data.graph.num_edges();
        let us_per_edge = t.as_secs_f64() * 1e6 / m as f64;
        per_edge.push(us_per_edge);
        table.row([
            data.name.to_string(),
            data.graph.num_vertices().to_string(),
            m.to_string(),
            format!("{:.2}", t.as_secs_f64()),
            format!("{us_per_edge:.2}"),
            format!("{:.2}", partition.edge_locality(&data.graph) * 100.0),
        ]);
    }
    println!("{table}");
    let min = per_edge.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_edge.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "time-per-edge spread over a 16x size range: {:.2}x (linear scaling ⇒ ≈ 1x)",
        max / min
    );
}
