//! Figure 4: vertex and edge imbalance (`max_i w(V_i)/avg_i w(V_i) − 1`)
//! of Spinner, BLP and SHP on the three public proxies, k ∈ {2, 8}.
//!
//! Paper result to reproduce: Spinner and SHP cannot hold both dimensions
//! on skewed graphs (Twitter especially), while BLP (and Hash/GD, whose
//! bars the paper omits because they are < 0.01) stay near-balanced.

use mdbgp_baselines::{BlpPartitioner, Partitioner, ShpPartitioner, SpinnerPartitioner};
use mdbgp_bench::datasets;
use mdbgp_bench::table::{pct, Table};

fn main() {
    println!("Figure 4 — vertex / edge imbalance of Spinner, BLP, SHP (k in {{2, 8}})\n");
    let spinner = SpinnerPartitioner::default();
    let blp = BlpPartitioner::default();
    let shp = ShpPartitioner::default();
    let algos: [&dyn Partitioner; 3] = [&spinner, &blp, &shp];

    let mut vertex_tbl = Table::new(["graph", "k", "Spinner", "BLP", "SHP"]);
    let mut edge_tbl = Table::new(["graph", "k", "Spinner", "BLP", "SHP"]);

    for data in datasets::public_graphs() {
        let weights = data.vertex_edge_weights();
        for k in [2usize, 8] {
            let mut vrow = vec![data.name.to_string(), k.to_string()];
            let mut erow = vec![data.name.to_string(), k.to_string()];
            for algo in algos {
                match algo.partition(&data.graph, &weights, k, 7) {
                    Ok(p) => {
                        let imb = p.imbalance(&weights);
                        vrow.push(pct(imb[0]));
                        erow.push(pct(imb[1]));
                    }
                    Err(e) => {
                        vrow.push(format!("err: {e}"));
                        erow.push(format!("err: {e}"));
                    }
                }
            }
            vertex_tbl.row(vrow);
            edge_tbl.row(erow);
        }
    }

    println!("Vertex imbalance, % (lower is better):");
    println!("{vertex_tbl}");
    println!("Edge imbalance, % (lower is better):");
    println!("{edge_tbl}");
    println!(
        "Hash and GD are omitted as in the paper: their imbalance is < 1%\n\
         on every instance (GD enforces it; hashing concentrates)."
    );
}
