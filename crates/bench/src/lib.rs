//! # mdbgp-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! Criterion micro-benchmarks under `benches/`. The library part hosts the
//! shared machinery:
//!
//! * [`datasets`] — the registry of scaled-down synthetic proxies standing
//!   in for the paper's SNAP / Facebook graphs (see DESIGN.md for the
//!   substitution rationale),
//! * [`policies`] — the partitioning policies compared throughout §4
//!   (hash / vertex / edge / vertex-edge and the baseline algorithms),
//! * [`table`] — plain-text tables and bar charts that mimic the paper's
//!   figures in a terminal,
//! * [`perfgate`] — the CI perf-regression gate: flat-JSON perf records
//!   emitted by `stream_online --json-out` and the machine-independent
//!   comparison against the committed `BENCH_stream.json` /
//!   `BENCH_stream_churn.json` baselines,
//! * [`churn`] — id tracking and removal-batch generation for driving
//!   deletion workloads through the streaming harnesses.

pub mod churn;
pub mod curves;
pub mod datasets;
pub mod perfgate;
pub mod policies;
pub mod resume;
pub mod table;

pub use datasets::Dataset;
pub use policies::Policy;
