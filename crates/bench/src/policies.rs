//! The partitioning policies compared in the paper's §4.2 experiments,
//! plus small helpers shared by the experiment binaries.

use mdbgp_baselines::HashPartitioner;
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::{Graph, Partition, PartitionError, Partitioner, VertexWeights, WeightKind};
use std::time::{Duration, Instant};

/// A partitioning policy of Figures 1 and 7: what gets balanced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Giraph's default hash assignment.
    Hash,
    /// GD balancing vertex counts only (one-dimensional).
    Vertex,
    /// GD balancing edge counts only (one-dimensional).
    Edge,
    /// GD balancing both — the paper's proposal.
    VertexEdge,
}

impl Policy {
    /// All four policies in the paper's presentation order.
    pub fn all() -> [Policy; 4] {
        [
            Policy::Hash,
            Policy::Vertex,
            Policy::Edge,
            Policy::VertexEdge,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Hash => "hash",
            Policy::Vertex => "vertex",
            Policy::Edge => "edge",
            Policy::VertexEdge => "vertex-edge",
        }
    }

    /// The weight dimensions this policy balances.
    pub fn weights(&self, graph: &Graph) -> VertexWeights {
        let kinds: &[WeightKind] = match self {
            Policy::Hash | Policy::Vertex => &[WeightKind::Unit],
            Policy::Edge => &[WeightKind::Degree],
            Policy::VertexEdge => &[WeightKind::Unit, WeightKind::Degree],
        };
        VertexWeights::build(graph, kinds)
    }

    /// Produces the partition for this policy.
    pub fn partition(
        &self,
        graph: &Graph,
        k: usize,
        epsilon: f64,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        let weights = self.weights(graph);
        match self {
            Policy::Hash => HashPartitioner.partition(graph, &weights, k, seed),
            _ => gd_fast(epsilon).partition(graph, &weights, k, seed),
        }
    }
}

/// GD tuned for experiment throughput: the paper's settings with a
/// slightly reduced iteration budget (quality plateaus well before 100
/// iterations on the scaled-down proxies — see Figure 8's curves).
pub fn gd_fast(epsilon: f64) -> GdPartitioner {
    GdPartitioner::new(GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(epsilon)
    })
}

/// GD with the paper's full configuration (100 iterations).
pub fn gd_paper(epsilon: f64) -> GdPartitioner {
    GdPartitioner::new(GdConfig::with_epsilon(epsilon))
}

/// Runs a closure and reports its wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn policies_have_expected_dimensions() {
        let g = gen::cycle(10);
        assert_eq!(Policy::Hash.weights(&g).dims(), 1);
        assert_eq!(Policy::Vertex.weights(&g).dims(), 1);
        assert_eq!(Policy::Edge.weights(&g).dims(), 1);
        assert_eq!(Policy::VertexEdge.weights(&g).dims(), 2);
    }

    #[test]
    fn vertex_edge_policy_balances_both_dims() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(1500),
            &mut StdRng::seed_from_u64(1),
        );
        let p = Policy::VertexEdge.partition(&cg.graph, 4, 0.05, 3).unwrap();
        let w = VertexWeights::vertex_edge(&cg.graph);
        assert!(p.max_imbalance(&w) < 0.08, "{}", p.max_imbalance(&w));
    }

    #[test]
    fn timed_measures_something() {
        let ((), d) = timed(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(5));
    }
}
