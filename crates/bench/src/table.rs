//! Plain-text tables and bar charts for the experiment binaries.

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.widths();
        let line = |f: &mut std::fmt::Formatter<'_>| {
            write!(f, "+")?;
            for width in &w {
                write!(f, "{}+", "-".repeat(width + 2))?;
            }
            writeln!(f)
        };
        let row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            write!(f, "|")?;
            for (cell, width) in cells.iter().zip(&w) {
                write!(f, " {cell:<width$} |", width = width)?;
            }
            writeln!(f)
        };
        line(f)?;
        row(f, &self.headers)?;
        line(f)?;
        for r in &self.rows {
            row(f, r)?;
        }
        line(f)
    }
}

/// Horizontal ASCII bar chart (the terminal analogue of the paper's bar
/// figures). Values are scaled so the longest bar is `width` characters.
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    let max = entries.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {value:.2}\n",
            "#".repeat(bar_len),
            label_w = label_w
        ));
    }
    out
}

/// Formats a fraction as the paper's percentage style (e.g. `87.7`).
pub fn pct(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["long-name", "2.5"]);
        let s = t.to_string();
        assert!(s.contains("| name      | value |"), "{s}");
        assert!(s.contains("| long-name | 2.5   |"), "{s}");
        assert_eq!(s.lines().count(), 6, "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn bars_scale_to_width() {
        let s = bar_chart(&[("x".to_string(), 1.0), ("y".to_string(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("#####"));
        assert!(lines[1].contains("##########"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.877), "87.70");
        assert_eq!(pct(0.0), "0.00");
    }
}
