//! Crash-resume trailer for `mdbgp_cli stream` snapshot files.
//!
//! An engine snapshot ([`mdbgp_stream::snapshot`]) carries everything the
//! *engine* needs to continue, but a replay harness holds state of its
//! own: how far through the input file the stream got, and — under churn
//! — the original→current id map ([`crate::churn::IdTracker`]) that lets
//! it keep scripting in original input ids after the engine recycled or
//! renumbered slots. That map used to die with the saving process, which
//! is why `--load-snapshot` historically refused any snapshot whose run
//! had removed vertices (and any id epoch but 0). The trailer fixes that:
//! `--save-snapshot` appends this small framed record *after* the engine
//! snapshot in the same file, and the load path reads it back to restore
//! the harness state exactly.
//!
//! Layout (everything little-endian), following the same self-describing
//! + checksummed discipline as the snapshot and batch-log formats:
//!
//! | size | field                                      |
//! |------|--------------------------------------------|
//! | 8    | magic `b"MDBGPRPL"`                        |
//! | 4    | trailer version (`u32`, currently 1)       |
//! | 4    | payload length in bytes (`u32`)            |
//! | 8    | FNV-1a 64 checksum of the payload (`u64`)  |
//! | …    | payload                                    |
//!
//! Payload: `arrived` (`u32`), `batch_no` (`u64`), map length (`u32`),
//! then one `u32` per original id (`u32::MAX` = removed). A snapshot file
//! without a trailer (written by an older build, or by a harness that
//! is not a replay) reads as `Ok(None)` — the caller falls back to the
//! legacy churn-free resume rules. Errors are `String`s in the CLI's
//! error idiom; every corruption case (truncation, bad magic, version
//! skew, checksum mismatch, a map that disagrees with `arrived`) names
//! what was wrong and yields no partial state.

use std::io::Read;
use std::io::Write;

use mdbgp_graph::VertexId;

/// First 8 bytes of a resume trailer.
pub const TRAILER_MAGIC: [u8; 8] = *b"MDBGPRPL";

/// Current trailer format version.
pub const TRAILER_VERSION: u32 = 1;

/// FNV-1a 64 (same parameters as the stream crate's snapshot/log
/// checksums, re-stated here because that helper is crate-private).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The replay-harness state a resumed process needs alongside the engine
/// snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeState {
    /// How many original input vertices had been streamed (bootstrap
    /// prefix + arrivals) when the snapshot was taken.
    pub arrived: u32,
    /// Batches completed so far (display/continuation numbering).
    pub batch_no: u64,
    /// The [`crate::churn::IdTracker`] map: current engine id per
    /// original id, `u32::MAX` for removed originals. Length always
    /// equals `arrived`.
    pub map: Vec<VertexId>,
}

/// Appends the trailer to `w` (call right after
/// `StreamingPartitioner::save_snapshot` on the same writer).
pub fn write_trailer<W: Write>(w: &mut W, state: &ResumeState) -> Result<(), String> {
    if state.map.len() != state.arrived as usize {
        return Err(format!(
            "resume trailer is inconsistent: {} arrived vertices but the id map tracks {}",
            state.arrived,
            state.map.len()
        ));
    }
    let mut payload = Vec::with_capacity(4 + 8 + 4 + state.map.len() * 4);
    payload.extend_from_slice(&state.arrived.to_le_bytes());
    payload.extend_from_slice(&state.batch_no.to_le_bytes());
    payload.extend_from_slice(&(state.map.len() as u32).to_le_bytes());
    for &cur in &state.map {
        payload.extend_from_slice(&cur.to_le_bytes());
    }
    let err = |e: std::io::Error| format!("write resume trailer: {e}");
    w.write_all(&TRAILER_MAGIC).map_err(err)?;
    w.write_all(&TRAILER_VERSION.to_le_bytes()).map_err(err)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(err)?;
    w.write_all(&fnv1a(&payload).to_le_bytes()).map_err(err)?;
    w.write_all(&payload).map_err(err)?;
    w.flush().map_err(err)?;
    Ok(())
}

/// Reads the trailer that follows the engine snapshot on `r`.
/// `Ok(None)` when the file simply ends there — a legacy snapshot with
/// no trailer; every other irregularity is an error naming the problem.
pub fn read_trailer<R: Read>(r: &mut R) -> Result<Option<ResumeState>, String> {
    let mut header = [0u8; 8 + 4 + 4 + 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None), // clean EOF: no trailer
            Ok(0) => {
                return Err(format!(
                    "resume trailer truncated: header needs {} bytes, {filled} available",
                    header.len()
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read resume trailer header: {e}")),
        }
    }
    let magic: [u8; 8] = header[0..8].try_into().expect("8-byte slice");
    if magic != TRAILER_MAGIC {
        return Err(format!(
            "bytes after the engine snapshot are not a resume trailer (magic {magic:?})"
        ));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    if version != TRAILER_VERSION {
        return Err(format!(
            "unsupported resume-trailer version {version} (this build reads {TRAILER_VERSION})"
        ));
    }
    let len = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice")) as usize;
    let stored = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    // The declared length is untrusted: read up to it, report truncation.
    let mut payload = Vec::new();
    r.take(len as u64)
        .read_to_end(&mut payload)
        .map_err(|e| format!("read resume trailer payload: {e}"))?;
    if payload.len() < len {
        return Err(format!(
            "resume trailer truncated: payload declares {len} bytes, {} available",
            payload.len()
        ));
    }
    let computed = fnv1a(&payload);
    if computed != stored {
        return Err(format!(
            "resume trailer checksum mismatch: stored {stored:#018x}, bytes hash to \
             {computed:#018x}"
        ));
    }
    if payload.len() < 16 {
        return Err("resume trailer payload too short for its fixed fields".into());
    }
    let arrived = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte slice"));
    let batch_no = u64::from_le_bytes(payload[4..12].try_into().expect("8-byte slice"));
    let map_len = u32::from_le_bytes(payload[12..16].try_into().expect("4-byte slice")) as usize;
    if map_len != arrived as usize {
        return Err(format!(
            "resume trailer is inconsistent: {arrived} arrived vertices but the id map tracks \
             {map_len}"
        ));
    }
    if payload.len() != 16 + map_len * 4 {
        return Err(format!(
            "resume trailer payload is {} bytes but its id map declares {map_len} entries",
            payload.len()
        ));
    }
    let map = payload[16..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    Ok(Some(ResumeState {
        arrived,
        batch_no,
        map,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResumeState {
        ResumeState {
            arrived: 5,
            batch_no: 12,
            map: vec![0, u32::MAX, 2, 1, u32::MAX],
        }
    }

    #[test]
    fn trailer_round_trips() {
        let state = sample();
        let mut bytes = Vec::new();
        write_trailer(&mut bytes, &state).unwrap();
        let back = read_trailer(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn missing_trailer_reads_as_none() {
        assert_eq!(read_trailer(&mut &[][..]).unwrap(), None);
    }

    #[test]
    fn corruption_is_named_and_yields_no_state() {
        let mut bytes = Vec::new();
        write_trailer(&mut bytes, &sample()).unwrap();

        let mut broken = bytes.clone();
        broken[0] ^= 0xFF;
        let err = read_trailer(&mut &broken[..]).unwrap_err();
        assert!(err.contains("not a resume trailer"), "{err}");

        let mut broken = bytes.clone();
        broken[8] = 9;
        let err = read_trailer(&mut &broken[..]).unwrap_err();
        assert!(err.contains("version 9"), "{err}");

        let last = bytes.len() - 1;
        let mut broken = bytes.clone();
        broken[last] ^= 0x01;
        let err = read_trailer(&mut &broken[..]).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        let err = read_trailer(&mut &bytes[..last]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        let err = read_trailer(&mut &bytes[..12]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn inconsistent_map_length_is_rejected_on_write() {
        let mut state = sample();
        state.map.pop();
        let err = write_trailer(&mut Vec::new(), &state).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }
}
