//! Shared machinery for driving churn (deletion) workloads against a
//! [`mdbgp_stream::StreamingPartitioner`] from replay-style harnesses.
//!
//! The harnesses (`stream_online`, `mdbgp_cli stream`) address vertices by
//! their ids in some *original* history graph, but under churn the
//! engine's ids shift: a purging compaction drops tombstoned vertices and
//! reports an old→new map in
//! [`mdbgp_stream::engine::BatchReport::remap`]. [`IdTracker`] maintains
//! the original→current translation so a harness can keep scripting in
//! original ids; [`queue_removals`] appends a deterministic mix of edge
//! and vertex removals to a batch, sampled from the live graph.

use mdbgp_graph::VertexId;
use mdbgp_stream::{DynamicGraph, UpdateBatch, TOMBSTONE};
use rand::rngs::StdRng;
use rand::Rng;

/// Original-id → current-engine-id map that survives purges.
#[derive(Clone, Debug)]
pub struct IdTracker {
    map: Vec<VertexId>,
}

impl IdTracker {
    /// Identity over the first `n` original ids (the bootstrap prefix).
    pub fn identity(n: usize) -> Self {
        Self {
            map: (0..n as VertexId).collect(),
        }
    }

    /// Registers the next original id as currently living at `cur`
    /// (callers track arrival order: the engine assigns ids sequentially).
    pub fn push(&mut self, cur: VertexId) {
        self.map.push(cur);
    }

    /// Current engine id of original vertex `orig`, or `None` once removed.
    pub fn current(&self, orig: VertexId) -> Option<VertexId> {
        match self.map[orig as usize] {
            TOMBSTONE => None,
            cur => Some(cur),
        }
    }

    /// Marks an original id as removed.
    pub fn remove(&mut self, orig: VertexId) {
        self.map[orig as usize] = TOMBSTONE;
    }

    /// Number of original ids tracked so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no ids are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The raw original→current map ([`TOMBSTONE`] marks removed
    /// originals) — what the crash-resume trailer ([`crate::resume`])
    /// persists so a later process can keep scripting in original ids.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.map
    }

    /// Rebuilds a tracker from a map previously exported with
    /// [`Self::as_slice`].
    pub fn from_map(map: Vec<VertexId>) -> Self {
        Self { map }
    }

    /// Rewrites every live translation through a purge's old→new map
    /// (apply once per `BatchReport::remap`).
    pub fn apply_remap(&mut self, remap: &[VertexId]) {
        for slot in &mut self.map {
            if *slot != TOMBSTONE {
                *slot = remap[*slot as usize];
            }
        }
    }
}

/// Predicts the engine ids the next `count` arrivals of one batch will be
/// assigned, mirroring [`DynamicGraph::add_vertex`]'s free-list recycling:
/// tombstoned ids come back most-recently-freed first, then fresh ids
/// extend the id space. Valid for a batch whose removals are queued
/// *after* its arrivals (the [`queue_removals`] convention) — earlier
/// same-batch removals would grow the free list mid-batch. Harnesses push
/// these predictions into their [`IdTracker`] so same-batch backward edges
/// between co-arrivals resolve, then verify them against the report's
/// authoritative `arrival_ids`.
pub fn predict_arrival_ids(graph: &DynamicGraph, count: usize) -> Vec<VertexId> {
    let mut free = graph.free_ids().to_vec();
    let mut next = graph.num_vertices() as VertexId;
    (0..count)
        .map(|_| {
            free.pop().unwrap_or_else(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Checks a batch's predicted arrival ids (pushed into `tracker` at
/// assembly time) against the authoritative post-remap
/// `BatchReport::arrival_ids`. `end` is the exclusive original-id bound of
/// the batch's arrivals, which occupy `end - arrival_ids.len()..end` in
/// the tracker. A tracker entry removed by the batch's own churn must be
/// reported as `TOMBSTONE`; anything else is a prediction divergence —
/// same-batch co-arrival edges attached to the wrong vertices.
pub fn verify_arrival_ids(
    tracker: &IdTracker,
    end: VertexId,
    arrival_ids: &[VertexId],
) -> Result<(), String> {
    for (i, v) in (end - arrival_ids.len() as VertexId..end).enumerate() {
        match tracker.current(v) {
            Some(cur) if cur == arrival_ids[i] => {}
            Some(cur) => {
                return Err(format!(
                    "arrival id prediction diverged for original {v}: predicted {cur}, engine \
                     assigned {}",
                    arrival_ids[i]
                ))
            }
            None if arrival_ids[i] == TOMBSTONE => {}
            None => {
                return Err(format!(
                    "original {v} was removed in its own batch but the engine reports arrival \
                     id {}",
                    arrival_ids[i]
                ))
            }
        }
    }
    Ok(())
}

/// Appends `edge_removals` random live-edge removals and `vertex_removals`
/// random live-vertex removals to `batch`, addressing the engine in
/// current ids via `tracker`. Vertex victims are drawn first and marked
/// removed in the tracker, edge removals steer clear of them (the engine
/// rejects references to vertices a batch already removed), and the vertex
/// removals are queued last so every earlier update still resolves.
/// Returns the victims as original ids. Sampling is deterministic in
/// `rng`; a floor of live vertices is kept so a long run never drains the
/// graph entirely.
pub fn queue_removals(
    batch: &mut UpdateBatch,
    graph: &DynamicGraph,
    tracker: &mut IdTracker,
    rng: &mut StdRng,
    edge_removals: usize,
    vertex_removals: usize,
) -> Vec<VertexId> {
    if tracker.is_empty() {
        return Vec::new();
    }
    let origs = tracker.len() as u32;
    // The tracker may already map originals that arrive later in the batch
    // being assembled (predicted ids past the current id space); those
    // cannot be sampled against the graph yet.
    let in_graph = |cur: VertexId| (cur as usize) < graph.num_vertices();
    let live_floor = 16.max(graph.num_live_vertices() / 2);
    let mut victims: Vec<VertexId> = Vec::with_capacity(vertex_removals);
    let mut victim_cur: Vec<VertexId> = Vec::with_capacity(vertex_removals);
    for _ in 0..vertex_removals {
        if graph.num_live_vertices() - victims.len() <= live_floor {
            break;
        }
        // Bounded rejection sampling: a miss is cheap, and bailing after a
        // fixed number of tries keeps pathological (mostly-removed) id
        // spaces from hanging the harness.
        for _ in 0..64 {
            let orig = rng.gen_range(0..origs);
            let Some(cur) = tracker.current(orig) else {
                continue;
            };
            if in_graph(cur) && !victims.contains(&orig) {
                victims.push(orig);
                victim_cur.push(cur);
                break;
            }
        }
    }
    for _ in 0..edge_removals {
        for _ in 0..64 {
            let Some(u) = tracker.current(rng.gen_range(0..origs)) else {
                continue;
            };
            if !in_graph(u) || victim_cur.contains(&u) {
                continue;
            }
            let deg = graph.degree(u);
            if deg == 0 {
                continue;
            }
            let v = graph
                .neighbors(u)
                .nth(rng.gen_range(0..deg))
                .expect("degree counted live neighbours");
            if victim_cur.contains(&v) {
                continue;
            }
            batch.remove_edge(u, v);
            break;
        }
    }
    for (&orig, &cur) in victims.iter().zip(&victim_cur) {
        batch.remove_vertex(cur);
        tracker.remove(orig);
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;
    use mdbgp_graph::VertexWeights;
    use rand::SeedableRng;

    #[test]
    fn id_tracker_survives_a_remap() {
        let mut t = IdTracker::identity(4);
        t.push(4); // original 4 arrives at engine id 4
        t.remove(1);
        // Purge drops old id 1: [0, _, 2, 3, 4] -> [0, _, 1, 2, 3].
        t.apply_remap(&[0, TOMBSTONE, 1, 2, 3]);
        assert_eq!(t.current(0), Some(0));
        assert_eq!(t.current(1), None);
        assert_eq!(t.current(2), Some(1));
        assert_eq!(t.current(4), Some(3));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn queued_removals_reference_only_live_state() {
        let g = graph_from_edges(64, &(0..63u32).map(|v| (v, v + 1)).collect::<Vec<_>>());
        let w = VertexWeights::vertex_edge(&g);
        let mut dg = DynamicGraph::new(g, w);
        let mut tracker = IdTracker::identity(64);
        dg.remove_vertex(5);
        tracker.remove(5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut batch = UpdateBatch::new();
        let victims = queue_removals(&mut batch, &dg, &mut tracker, &mut rng, 6, 4);
        assert!(!victims.is_empty());
        assert!(victims.iter().all(|&orig| tracker.current(orig).is_none()));
        // Every queued removal must target a live, non-victim vertex at
        // queueing time (vertex removals come last, so earlier edge
        // removals still resolve when applied in order).
        let mut seen_vertex_removal = false;
        for update in &batch.updates {
            match update {
                mdbgp_stream::StreamUpdate::RemoveEdge { u, v } => {
                    assert!(!seen_vertex_removal, "edge removals precede vertex ones");
                    assert!(dg.is_live(*u) && dg.is_live(*v));
                }
                mdbgp_stream::StreamUpdate::RemoveVertex { v } => {
                    seen_vertex_removal = true;
                    assert!(dg.is_live(*v));
                }
                other => panic!("unexpected update {other:?}"),
            }
        }
        // And the whole batch must actually apply against a matching graph.
        for update in &batch.updates {
            match update {
                mdbgp_stream::StreamUpdate::RemoveEdge { u, v } => {
                    dg.remove_edge(*u, *v);
                }
                mdbgp_stream::StreamUpdate::RemoveVertex { v } => {
                    dg.remove_vertex(*v);
                }
                _ => unreachable!(),
            }
        }
    }
}
