//! Shared machinery for the per-iteration convergence figures
//! (paper Figures 8–10 and their Appendix C.2 twins, Figures 15–17).

use crate::datasets::Dataset;
use crate::table::Table;
use mdbgp_core::gd::{bipartition, IterationRecord, SplitTarget};
use mdbgp_core::GdConfig;

/// A labelled convergence trace.
pub struct Curve {
    pub label: String,
    pub history: Vec<IterationRecord>,
}

/// Runs one GD bipartition with history tracking on the dataset's
/// vertex+degree weights.
pub fn run_curve(dataset: &Dataset, mut config: GdConfig, seed: u64, label: &str) -> Curve {
    config.track_history = true;
    let weights = dataset.vertex_edge_weights();
    let res = bipartition(
        &dataset.graph,
        &weights,
        &config,
        &SplitTarget::half(config.epsilon),
        seed,
    )
    .unwrap_or_else(|e| panic!("GD failed on {}: {e}", dataset.name));
    Curve {
        label: label.to_string(),
        history: res.history,
    }
}

fn checkpoint_rows(
    curves: &[Curve],
    stride: usize,
    metric: impl Fn(&IterationRecord) -> f64,
) -> Table {
    let mut headers = vec!["iteration".to_string()];
    headers.extend(curves.iter().map(|c| c.label.clone()));
    let mut table = Table::new(headers);
    let max_len = curves.iter().map(|c| c.history.len()).max().unwrap_or(0);
    let mut t = 0;
    while t < max_len {
        let mut row = vec![t.to_string()];
        for c in curves {
            // Histories can end early when every vertex is fixed; carry the
            // last value forward so the table reads like the paper's plots.
            let rec = c.history.get(t).or_else(|| c.history.last());
            row.push(rec.map_or("-".into(), |r| format!("{:.2}", metric(r))));
        }
        table.row(row);
        t += stride;
    }
    // Always include the final iteration.
    if max_len > 0 && (max_len - 1) % stride != 0 {
        let mut row = vec![(max_len - 1).to_string()];
        for c in curves {
            let rec = c.history.last();
            row.push(rec.map_or("-".into(), |r| format!("{:.2}", metric(r))));
        }
        table.row(row);
    }
    table
}

/// Prints edge-locality-vs-iteration checkpoints (the paper's left panels).
pub fn print_locality_curves(title: &str, curves: &[Curve], stride: usize) {
    println!("\n{title} — edge locality, %");
    println!(
        "{}",
        checkpoint_rows(curves, stride, |r| r.expected_locality * 100.0)
    );
}

/// Prints max-imbalance-vs-iteration checkpoints (the right panels of
/// Figures 9/15).
pub fn print_imbalance_curves(title: &str, curves: &[Curve], stride: usize) {
    println!("\n{title} — max fractional imbalance, %");
    println!(
        "{}",
        checkpoint_rows(curves, stride, |r| r.fractional_imbalance * 100.0)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn run_curve_records_history() {
        let mut d = datasets::lj();
        // Shrink for test speed: take the first 2000 vertices.
        let sub = mdbgp_graph::InducedSubgraph::extract(&d.graph, &(0..2000).collect::<Vec<_>>());
        d.graph = sub.graph;
        d.community.truncate(2000);
        let cfg = GdConfig {
            iterations: 10,
            ..GdConfig::with_epsilon(0.05)
        };
        let c = run_curve(&d, cfg, 1, "test");
        assert_eq!(c.history.len(), 10);
        assert_eq!(c.label, "test");
    }

    #[test]
    fn checkpoint_table_includes_last_iteration() {
        let rec = |i: usize| IterationRecord {
            iteration: i,
            expected_locality: 0.5 + i as f64 / 100.0,
            fractional_imbalance: 0.0,
            step_length: 1.0,
            gamma: 0.1,
            fixed_vertices: 0,
        };
        let c = Curve {
            label: "x".into(),
            history: (0..7).map(rec).collect(),
        };
        let t = checkpoint_rows(&[c], 5, |r| r.expected_locality);
        let s = t.to_string();
        assert!(s.contains("| 0 "), "{s}");
        assert!(s.contains("| 6 "), "{s}");
    }
}
