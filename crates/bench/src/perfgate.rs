//! Perf-regression gate for the `stream_online` acceptance bench.
//!
//! CI compares every run against a committed baseline
//! (`BENCH_stream.json` at the workspace root). Raw wall-clock is useless
//! across heterogeneous runners, so the gated metric is the run's
//! **normalized wall-clock**: incremental maintenance time divided by the
//! from-scratch GD time *measured in the same process on the same
//! machine* (the reciprocal of the bench's headline speedup). A >30%
//! regression of that ratio — the incremental path getting slower relative
//! to the hardware's own scratch solve — fails the gate, as does any ε
//! violation or a collapse in edge locality (quality regressions are not
//! an acceptable way to buy speed).
//!
//! The JSON schema is deliberately flat (string/number/bool scalars plus
//! one per-batch array of number-maps) so this crate can read it back with
//! the tiny parser below instead of a vendored serde.

use std::fmt::Write as _;

/// Per-batch measurements emitted by `stream_online --json-out`.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchPerf {
    pub batch: usize,
    /// Incremental ingest wall-clock for this batch, milliseconds.
    pub inc_ms: f64,
    /// From-scratch GD wall-clock for the same post-batch graph, ms.
    pub scratch_ms: f64,
    /// Cut edges of the incremental partition after the batch.
    pub cut_edges: usize,
    /// Post-batch max imbalance of the incremental partition.
    pub imbalance: f64,
    /// Post-batch edge locality of the incremental partition.
    pub locality: f64,
}

/// v4: latency/convergence quantiles sourced from the run's metrics
/// registry. Totals catch "a stage got slower on average"; quantiles
/// catch tail blowups (one pathological batch, a GD pair that stopped
/// converging) that average away inside the totals. All fields are
/// milliseconds except the refine-iteration pair, which counts GD
/// iterations per `refine_pair` call.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PerfQuantiles {
    /// Median GD iterations per refine_pair call.
    pub refine_iters_p50: f64,
    /// p99 GD iterations per refine_pair call — the convergence-tail gate
    /// input: a pair that stops converging shows up here long before it
    /// moves the wall-clock totals.
    pub refine_iters_p99: f64,
    pub validate_p99_ms: f64,
    pub split_p99_ms: f64,
    pub place_p99_ms: f64,
    pub repair_p99_ms: f64,
    pub commit_p99_ms: f64,
    pub refine_p99_ms: f64,
}

/// Floor (milliseconds) below which a scratch leg cannot anchor the
/// normalized wall-clock: the record serializes at millisecond precision,
/// so a sub-floor denominator is mostly rounding noise — and a runner fast
/// enough to get there turns the ratio into `inf`/NaN garbage that poisons
/// every later `--check-against`. [`check_regression`] rejects such
/// records with a named error instead of gating on the poisoned ratio.
pub const MIN_SCRATCH_MS: f64 = 0.5;

/// One `stream_online` run: the summary the gate compares plus the
/// per-batch breakdown for forensics.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRecord {
    /// Worker threads the run used.
    pub threads: usize,
    /// Churn fraction of the run (0.0 = add-only; removals per batch are
    /// generated as this fraction of arrivals/extra edges). Gated like the
    /// thread count: a baseline recorded at a different churn measures a
    /// different workload.
    pub churn: f64,
    /// Total incremental wall-clock across batches, ms.
    pub inc_total_ms: f64,
    /// Total from-scratch wall-clock across batches, ms.
    pub scratch_total_ms: f64,
    /// Headline speedup `scratch_total_ms / inc_total_ms`.
    pub speedup: f64,
    /// Whether every batch ended within ε.
    pub eps_ok: bool,
    /// Edge locality after the final batch.
    pub final_locality: f64,
    /// Max imbalance after the final batch.
    pub final_imbalance: f64,
    /// Ingest wall-clock per pipeline stage, summed across batches
    /// (milliseconds; 0 on records predating the staged pipeline). The
    /// split lets a regression localize — "placement got slower" reads
    /// directly off the record instead of hiding inside `inc_total_ms`.
    pub validate_total_ms: f64,
    pub split_total_ms: f64,
    pub place_total_ms: f64,
    pub repair_total_ms: f64,
    pub commit_total_ms: f64,
    pub refine_total_ms: f64,
    /// Speculative placements evicted by conflict repair across the run
    /// (`None` on records predating the staged pipeline).
    pub placement_conflicts: Option<usize>,
    /// Conflict-repair passes across the run (`None` on legacy records).
    pub repair_passes: Option<usize>,
    /// Rebalance full-membership rescans across the run (`None` on legacy
    /// records). Deterministic for a fixed workload, so the gate fails a
    /// run whose count *increased* over the baseline — the committed
    /// number pins the composite-relief-key heap's candidate quality.
    pub rebalance_full_scans: Option<usize>,
    /// v3: total wall-clock spent in `save_snapshot` across the run's
    /// kill-and-resume cycles (0 on records predating snapshots or runs
    /// without `--snapshot-every`).
    pub snapshot_save_total_ms: f64,
    /// v3: total wall-clock spent in `restore` across the run's
    /// kill-and-resume cycles.
    pub snapshot_restore_total_ms: f64,
    /// v3: number of kill-and-resume cycles the run performed (`None` on
    /// legacy records and snapshot-free runs).
    pub snapshots: Option<usize>,
    /// v4: per-stage latency and GD-convergence quantiles from the run's
    /// metrics registry (`None` on v2/v3 baselines, which keep parsing —
    /// the quantile gate simply stays off against them).
    pub quantiles: Option<PerfQuantiles>,
    /// v5: full `A·z` mat-vec evaluations across every warm-started
    /// refine_pair run (`core.gd.grad_full_recomputes`; `None` on pre-v5
    /// baselines). Informational: deterministic for a fixed workload, so a
    /// reviewer can read the delta-path engagement straight off a
    /// baseline diff — `full / (full + delta)` is the fraction of gradient
    /// evaluations that still paid the full O(m) sweep.
    pub gd_full_recomputes: Option<usize>,
    /// v5: gradient evaluations served by the sparse diff sweep
    /// (`core.gd.grad_delta_iters`; `None` on pre-v5 baselines).
    pub gd_delta_iters: Option<usize>,
    /// v6: aggregate lookup throughput of the `stream_serve` reader
    /// threads, lookups per second across the whole run (`None` on
    /// pre-v6 baselines and on legs without a serving side, i.e. every
    /// `stream_online` record). Informational — throughput divides by
    /// reader count and machine speed, so the gate reads the normalized
    /// p99 instead.
    pub lookups_per_sec: Option<f64>,
    /// v6: p99 lookup latency on the published-view read path,
    /// microseconds (`None` on pre-v6 baselines). Gated
    /// machine-normalized against the same-machine scratch solve, and
    /// only when **both** records carry the field — a `stream_online`
    /// baseline never engages the lookup gate.
    pub lookup_p99_us: Option<f64>,
    /// v7: deferred-flush ranges the split stage fanned out across the run
    /// (`stream.split.parallel_ranges`; `None` on pre-v7 baselines).
    /// Informational and deterministic for a fixed workload — the count
    /// depends on touched-vertex sets, never the thread count.
    pub split_parallel_ranges: Option<usize>,
    /// v7: speculative conflict-repair rounds across the run
    /// (`stream.repair.spec_rounds`; `None` on pre-v7 baselines).
    /// Informational: reads how much of the loser re-placement ran in
    /// concurrent chunks instead of the serial fallback.
    pub repair_spec_rounds: Option<usize>,
    /// v7: wall-clock of the parallel delta-merge compaction (and purge
    /// remap application) across the run, milliseconds
    /// (`stream.compact.parallel_ms`; `None` on pre-v7 baselines).
    /// Informational — machine-dependent, so never gated.
    pub compact_parallel_ms: Option<f64>,
    /// v8: total wall-clock the `stream_replicate` followers spent
    /// replaying the leader's batch log, milliseconds (0 on records
    /// predating replication and on legs without followers). Gated
    /// machine-normalized against the same-machine scratch solve —
    /// replay lag is the failover budget: a follower that replays slower
    /// than the leader ingests can never catch up.
    pub replay_total_ms: f64,
    /// v8: log records replayed across every follower (`None` on pre-v8
    /// baselines). Deterministic for a fixed workload — informational.
    pub replay_batches: Option<usize>,
    /// v8: bytes the leader's batch log occupied across the run,
    /// rotations included (`stream.log.bytes`; `None` on pre-v8
    /// baselines). Deterministic for a fixed workload — a baseline diff
    /// reads wire-format growth straight off this field.
    pub log_bytes: Option<usize>,
    /// v8: log rotations (full-snapshot cutovers) the leader performed
    /// (`stream.log.rotations`; `None` on pre-v8 baselines).
    pub log_rotations: Option<usize>,
    /// v8: follower count of the run (`None` on pre-v8 baselines and on
    /// follower-less legs). Presence keys the v8 block: the replay-lag
    /// gate engages only when **both** records carry it, and mismatched
    /// counts fail like a thread-count mismatch — more followers replay
    /// more batches, so a cross-count comparison gates nothing.
    pub followers: Option<usize>,
    pub batches: Vec<BatchPerf>,
}

impl PerfRecord {
    /// Normalized wall-clock: incremental time per unit of scratch time on
    /// the same machine (lower is better; `1 / speedup`). The denominator
    /// is clamped to [`MIN_SCRATCH_MS`] so a degenerate record can never
    /// produce `inf`/NaN — but [`check_regression`] refuses to gate on a
    /// clamped record at all (see [`MIN_SCRATCH_MS`]).
    pub fn normalized_wallclock(&self) -> f64 {
        self.inc_total_ms / self.scratch_total_ms.max(MIN_SCRATCH_MS)
    }

    /// Serializes to the flat JSON schema (stable key order, 2-space
    /// indent) so baselines diff cleanly in review.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"churn\": {:.3},", self.churn);
        let _ = writeln!(s, "  \"inc_total_ms\": {:.3},", self.inc_total_ms);
        let _ = writeln!(s, "  \"scratch_total_ms\": {:.3},", self.scratch_total_ms);
        let _ = writeln!(s, "  \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(s, "  \"eps_ok\": {},", self.eps_ok);
        let _ = writeln!(s, "  \"final_locality\": {:.4},", self.final_locality);
        let _ = writeln!(s, "  \"final_imbalance\": {:.6},", self.final_imbalance);
        let _ = writeln!(s, "  \"validate_total_ms\": {:.3},", self.validate_total_ms);
        let _ = writeln!(s, "  \"split_total_ms\": {:.3},", self.split_total_ms);
        let _ = writeln!(s, "  \"place_total_ms\": {:.3},", self.place_total_ms);
        let _ = writeln!(s, "  \"repair_total_ms\": {:.3},", self.repair_total_ms);
        let _ = writeln!(s, "  \"commit_total_ms\": {:.3},", self.commit_total_ms);
        let _ = writeln!(s, "  \"refine_total_ms\": {:.3},", self.refine_total_ms);
        if let Some(c) = self.placement_conflicts {
            let _ = writeln!(s, "  \"placement_conflicts\": {c},");
        }
        if let Some(p) = self.repair_passes {
            let _ = writeln!(s, "  \"repair_passes\": {p},");
        }
        if let Some(f) = self.rebalance_full_scans {
            let _ = writeln!(s, "  \"rebalance_full_scans\": {f},");
        }
        if let Some(c) = self.snapshots {
            let _ = writeln!(
                s,
                "  \"snapshot_save_total_ms\": {:.3},",
                self.snapshot_save_total_ms
            );
            let _ = writeln!(
                s,
                "  \"snapshot_restore_total_ms\": {:.3},",
                self.snapshot_restore_total_ms
            );
            let _ = writeln!(s, "  \"snapshots\": {c},");
        }
        if let Some(f) = self.gd_full_recomputes {
            let _ = writeln!(s, "  \"gd_full_recomputes\": {f},");
        }
        if let Some(d) = self.gd_delta_iters {
            let _ = writeln!(s, "  \"gd_delta_iters\": {d},");
        }
        if let Some(l) = self.lookups_per_sec {
            let _ = writeln!(s, "  \"lookups_per_sec\": {l:.0},");
        }
        if let Some(l) = self.lookup_p99_us {
            let _ = writeln!(s, "  \"lookup_p99_us\": {l:.3},");
        }
        if let Some(r) = self.split_parallel_ranges {
            let _ = writeln!(s, "  \"split_parallel_ranges\": {r},");
        }
        if let Some(r) = self.repair_spec_rounds {
            let _ = writeln!(s, "  \"repair_spec_rounds\": {r},");
        }
        if let Some(m) = self.compact_parallel_ms {
            let _ = writeln!(s, "  \"compact_parallel_ms\": {m:.3},");
        }
        if let Some(f) = self.followers {
            let _ = writeln!(s, "  \"replay_total_ms\": {:.3},", self.replay_total_ms);
            if let Some(b) = self.replay_batches {
                let _ = writeln!(s, "  \"replay_batches\": {b},");
            }
            if let Some(b) = self.log_bytes {
                let _ = writeln!(s, "  \"log_bytes\": {b},");
            }
            if let Some(r) = self.log_rotations {
                let _ = writeln!(s, "  \"log_rotations\": {r},");
            }
            let _ = writeln!(s, "  \"followers\": {f},");
        }
        if let Some(q) = &self.quantiles {
            let _ = writeln!(s, "  \"refine_iters_p50\": {:.3},", q.refine_iters_p50);
            let _ = writeln!(s, "  \"refine_iters_p99\": {:.3},", q.refine_iters_p99);
            let _ = writeln!(s, "  \"validate_p99_ms\": {:.3},", q.validate_p99_ms);
            let _ = writeln!(s, "  \"split_p99_ms\": {:.3},", q.split_p99_ms);
            let _ = writeln!(s, "  \"place_p99_ms\": {:.3},", q.place_p99_ms);
            let _ = writeln!(s, "  \"repair_p99_ms\": {:.3},", q.repair_p99_ms);
            let _ = writeln!(s, "  \"commit_p99_ms\": {:.3},", q.commit_p99_ms);
            let _ = writeln!(s, "  \"refine_p99_ms\": {:.3},", q.refine_p99_ms);
        }
        s.push_str("  \"batches\": [\n");
        for (i, b) in self.batches.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"batch\": {}, \"inc_ms\": {:.3}, \"scratch_ms\": {:.3}, \
                 \"cut_edges\": {}, \"imbalance\": {:.6}, \"locality\": {:.4}}}",
                b.batch, b.inc_ms, b.scratch_ms, b.cut_edges, b.imbalance, b.locality
            );
            s.push_str(if i + 1 < self.batches.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the schema written by [`Self::to_json`]. Tolerates
    /// whitespace/key-order changes but not nested objects beyond the
    /// `batches` array.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let scalars = |src: &str| -> Vec<(String, String)> {
            // Split `"key": value` pairs at the top nesting level of `src`.
            let mut out = Vec::new();
            let mut depth = 0i32;
            let mut token = String::new();
            for c in src.chars() {
                match c {
                    '{' | '[' => {
                        depth += 1;
                        if depth > 1 {
                            token.push(c);
                        }
                    }
                    '}' | ']' => {
                        depth -= 1;
                        if depth >= 1 {
                            token.push(c);
                        }
                    }
                    ',' if depth == 1 => {
                        out.push(std::mem::take(&mut token));
                        token.clear();
                    }
                    _ if depth >= 1 => token.push(c),
                    _ => {}
                }
            }
            if !token.trim().is_empty() {
                out.push(token);
            }
            out.into_iter()
                .filter_map(|pair| {
                    let (k, v) = pair.split_once(':')?;
                    Some((k.trim().trim_matches('"').to_string(), v.trim().to_string()))
                })
                .collect()
        };

        let fields = scalars(text);
        let get = |key: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("baseline is missing \"{key}\""))
        };
        let num = |key: &str| -> Result<f64, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("\"{key}\" is not a number: {}", get(key).unwrap()))
        };

        let batches_src = get("batches")?;
        let mut batches = Vec::new();
        // Each batch object is flat: re-use the scalar splitter per object.
        for obj in batches_src.split('{').skip(1) {
            let obj = obj.split('}').next().unwrap_or("");
            let entries: Vec<(String, String)> = obj
                .split(',')
                .filter_map(|pair| {
                    let (k, v) = pair.split_once(':')?;
                    Some((k.trim().trim_matches('"').to_string(), v.trim().to_string()))
                })
                .collect();
            let bnum = |key: &str| -> Result<f64, String> {
                entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .ok_or_else(|| format!("batch entry missing \"{key}\""))?
                    .1
                    .parse()
                    .map_err(|_| format!("batch \"{key}\" is not a number"))
            };
            batches.push(BatchPerf {
                batch: bnum("batch")? as usize,
                inc_ms: bnum("inc_ms")?,
                scratch_ms: bnum("scratch_ms")?,
                cut_edges: bnum("cut_edges")? as usize,
                imbalance: bnum("imbalance")?,
                locality: bnum("locality")?,
            });
        }

        // Fields younger than the record format: absent keys take the
        // documented default (legacy baselines must keep parsing), but a
        // present-and-malformed value is an error like any other field.
        let num_or_zero = |key: &str| -> Result<f64, String> {
            if get(key).is_ok() {
                num(key)
            } else {
                Ok(0.0)
            }
        };
        let opt_count = |key: &str| -> Result<Option<usize>, String> {
            if get(key).is_ok() {
                num(key).map(|v| Some(v as usize))
            } else {
                Ok(None)
            }
        };
        let opt_num = |key: &str| -> Result<Option<f64>, String> {
            if get(key).is_ok() {
                num(key).map(Some)
            } else {
                Ok(None)
            }
        };
        Ok(Self {
            threads: num("threads")? as usize,
            churn: num_or_zero("churn")?,
            inc_total_ms: num("inc_total_ms")?,
            scratch_total_ms: num("scratch_total_ms")?,
            speedup: num("speedup")?,
            eps_ok: get("eps_ok")? == "true",
            final_locality: num("final_locality")?,
            final_imbalance: num("final_imbalance")?,
            validate_total_ms: num_or_zero("validate_total_ms")?,
            split_total_ms: num_or_zero("split_total_ms")?,
            place_total_ms: num_or_zero("place_total_ms")?,
            repair_total_ms: num_or_zero("repair_total_ms")?,
            commit_total_ms: num_or_zero("commit_total_ms")?,
            refine_total_ms: num_or_zero("refine_total_ms")?,
            placement_conflicts: opt_count("placement_conflicts")?,
            repair_passes: opt_count("repair_passes")?,
            rebalance_full_scans: opt_count("rebalance_full_scans")?,
            snapshot_save_total_ms: num_or_zero("snapshot_save_total_ms")?,
            snapshot_restore_total_ms: num_or_zero("snapshot_restore_total_ms")?,
            snapshots: opt_count("snapshots")?,
            // Presence keyed on the field the gate reads: a v4 record
            // always writes the full block, so one key stands for all.
            quantiles: if get("refine_iters_p99").is_ok() {
                Some(PerfQuantiles {
                    refine_iters_p50: num_or_zero("refine_iters_p50")?,
                    refine_iters_p99: num_or_zero("refine_iters_p99")?,
                    validate_p99_ms: num_or_zero("validate_p99_ms")?,
                    split_p99_ms: num_or_zero("split_p99_ms")?,
                    place_p99_ms: num_or_zero("place_p99_ms")?,
                    repair_p99_ms: num_or_zero("repair_p99_ms")?,
                    commit_p99_ms: num_or_zero("commit_p99_ms")?,
                    refine_p99_ms: num_or_zero("refine_p99_ms")?,
                })
            } else {
                None
            },
            gd_full_recomputes: opt_count("gd_full_recomputes")?,
            gd_delta_iters: opt_count("gd_delta_iters")?,
            lookups_per_sec: opt_num("lookups_per_sec")?,
            lookup_p99_us: opt_num("lookup_p99_us")?,
            split_parallel_ranges: opt_count("split_parallel_ranges")?,
            repair_spec_rounds: opt_count("repair_spec_rounds")?,
            compact_parallel_ms: opt_num("compact_parallel_ms")?,
            replay_total_ms: num_or_zero("replay_total_ms")?,
            replay_batches: opt_count("replay_batches")?,
            log_bytes: opt_count("log_bytes")?,
            log_rotations: opt_count("log_rotations")?,
            followers: opt_count("followers")?,
            batches,
        })
    }
}

/// Allowed regression of the placement-stage normalized wall-clock.
/// Wider than the total-wall-clock band: the stage totals are a few
/// milliseconds, so scheduler jitter moves them proportionally more —
/// while the regressions this gate exists for (a serialized chunk fan-out,
/// an accidentally quadratic scoring sweep) cost well over 2×.
pub const PLACE_STAGE_REGRESSION: f64 = 0.75;

/// Baseline placement-stage wall-clock (ms) below which the stage gate
/// stays silent — a sub-millisecond stage is rounding noise, and legacy
/// baselines record 0.
pub const MIN_STAGE_MS: f64 = 1.0;

/// Allowed regression of the snapshot save+restore normalized wall-clock
/// (the kill-and-resume CI leg's committed bound). Like the placement
/// band, wider than the total-wall-clock budget: the snapshot totals are
/// small and jittery, while the regressions the gate exists for — an
/// accidentally quadratic serializer, a restore that re-solves instead of
/// deserializing — cost multiples.
pub const SNAPSHOT_REGRESSION: f64 = 1.0;

/// Allowed regression of the machine-normalized p99 lookup latency
/// (the `stream_serve` CI leg's committed bound). Wide like the other
/// small-quantity bands: a single lookup is microseconds, so scheduler
/// jitter moves the p99 proportionally more than it moves the totals —
/// while the regressions this gate exists for (a lock on the lookup
/// path, a re-pin per call, a view rebuilt per lookup) cost well over
/// 2×.
pub const LOOKUP_REGRESSION: f64 = 1.0;

/// Allowed regression of the machine-normalized follower replay lag
/// (the `stream_replicate` CI leg's committed bound). Replay is ingest
/// re-run, so its wall-clock inherits all of ingest's jitter on a small
/// leg — hence the wide band, like the other small-quantity gates. The
/// regressions it exists for (a follower that re-verifies the whole log
/// per record, a wire decode gone quadratic) cost well over 2×.
pub const REPLAY_REGRESSION: f64 = 1.0;

/// Floor (µs) a baseline p99 lookup latency is clamped to before the
/// lookup gate compares. The serving histogram quantizes at microsecond
/// resolution and a healthy lookup is tens of nanoseconds, so committed
/// baselines routinely record a p99 of 0 — clamping (rather than
/// disabling, as the stage gates do) keeps the gate armed against the
/// regressions it exists for, which cost tens of microseconds.
pub const MIN_LOOKUP_P99_US: f64 = 1.0;

/// Gate verdict: `Err` carries the human-readable failure reasons.
///
/// * ε violated in the current run → fail (regardless of the baseline);
/// * thread-count or churn-fraction mismatch with the baseline → fail
///   (different workload, not a comparison);
/// * a scratch leg under [`MIN_SCRATCH_MS`] on either side → fail with a
///   named error (the normalized ratio would be rounding noise);
/// * normalized wall-clock (`1/speedup`) regressed more than
///   `max_regression` (e.g. `0.30`) relative to the baseline → fail;
/// * final edge locality dropped more than 10 points below baseline →
///   fail (don't let the gate reward trading quality for speed);
/// * `rebalance_full_scans` exceeded the baseline's count (both present;
///   the count is deterministic for a fixed workload) → fail — the
///   composite relief-key heaps must not regress toward full rescans;
/// * the **snapshot** normalized wall-clock (`(save + restore) /
///   scratch`) regressed more than [`SNAPSHOT_REGRESSION`] → fail, so the
///   kill-and-resume leg's warm-restart cost stays bounded (engaged only
///   when the baseline recorded a measurable snapshot total);
/// * the **placement-stage** normalized wall-clock
///   (`(place + repair) / scratch`, machine-normalized like the total)
///   regressed more than [`PLACE_STAGE_REGRESSION`] → fail. The total
///   gate alone cannot catch this: on a refinement-heavy leg a 4×
///   placement slowdown hides inside the 30% total budget, which is
///   exactly how a serialized speculative stage would ship. Only engaged
///   when the baseline's placement stage is large enough to measure
///   (≥ [`MIN_STAGE_MS`]; legacy baselines record 0 and skip);
/// * the **refine-stage p99** (v4 quantile block, machine-normalized)
///   regressed more than `max_regression` → fail. Stage totals let one
///   pathological batch average away; the p99 catches the tail. Engaged
///   only when both records carry quantiles (v2/v3 baselines skip) and
///   the baseline tail is ≥ [`MIN_STAGE_MS`];
/// * the **p99 lookup latency** (v6, `stream_serve` only,
///   machine-normalized like every other wall-clock gate) regressed
///   more than [`LOOKUP_REGRESSION`] → fail. Engaged only when **both**
///   records carry `lookup_p99_us` (pre-v6 and `stream_online`
///   baselines skip); a sub-floor baseline tail is clamped to
///   [`MIN_LOOKUP_P99_US`] rather than silencing the gate;
/// * the **follower replay lag** (v8, `stream_replicate` only,
///   machine-normalized) regressed more than [`REPLAY_REGRESSION`] →
///   fail, and a follower-count mismatch between the records fails
///   outright like a thread-count mismatch. Engaged only when both
///   records carry `followers` and the baseline's replay total is
///   ≥ [`MIN_STAGE_MS`].
pub fn check_regression(
    current: &PerfRecord,
    baseline: &PerfRecord,
    max_regression: f64,
) -> Result<(), String> {
    let mut reasons = Vec::new();
    if current.threads != baseline.threads {
        // Scratch GD and the incremental path scale differently, so a
        // cross-thread-count comparison is apples-to-oranges: it silently
        // loosens the gate on one leg and can spuriously fail the other.
        reasons.push(format!(
            "thread-count mismatch: run used {} threads, baseline {} — gate each thread \
             count against a baseline recorded at that thread count",
            current.threads, baseline.threads
        ));
    }
    if (current.churn - baseline.churn).abs() > 1e-9 {
        // Deletion batches do different work (tombstoning, purges, both-way
        // drift) than add-only ones; comparing across churn fractions gates
        // nothing meaningful.
        reasons.push(format!(
            "churn mismatch: run used churn {:.3}, baseline {:.3} — gate each churn \
             fraction against a baseline recorded at that fraction",
            current.churn, baseline.churn
        ));
    }
    for (who, rec) in [("current run", current), ("baseline", baseline)] {
        if rec.scratch_total_ms < MIN_SCRATCH_MS {
            reasons.push(format!(
                "unusable scratch reference: {who}'s scratch leg took {:.4} ms, below the \
                 {MIN_SCRATCH_MS} ms floor — the normalized wall-clock denominator is \
                 rounding noise on this runner; rerun with a larger --n/--batches",
                rec.scratch_total_ms
            ));
        }
    }
    if !current.eps_ok {
        reasons.push("current run violated the ε guarantee".to_string());
    }
    let (cur, base) = (
        current.normalized_wallclock(),
        baseline.normalized_wallclock(),
    );
    if cur > base * (1.0 + max_regression) {
        reasons.push(format!(
            "normalized wall-clock regressed {:.0}% (limit {:.0}%): \
             {:.4} vs baseline {:.4} (speedup {:.1}x vs {:.1}x)",
            (cur / base - 1.0) * 100.0,
            max_regression * 100.0,
            cur,
            base,
            current.speedup,
            baseline.speedup,
        ));
    }
    if current.final_locality < baseline.final_locality - 0.10 {
        reasons.push(format!(
            "final locality collapsed: {:.1}% vs baseline {:.1}%",
            current.final_locality * 100.0,
            baseline.final_locality * 100.0
        ));
    }
    let base_place = baseline.place_total_ms + baseline.repair_total_ms;
    let cur_place = current.place_total_ms + current.repair_total_ms;
    if base_place >= MIN_STAGE_MS && cur_place > 0.0 {
        let cur_ratio = cur_place / current.scratch_total_ms.max(MIN_SCRATCH_MS);
        let base_ratio = base_place / baseline.scratch_total_ms.max(MIN_SCRATCH_MS);
        if cur_ratio > base_ratio * (1.0 + PLACE_STAGE_REGRESSION) {
            reasons.push(format!(
                "placement stage regressed {:.0}% (limit {:.0}%): place+repair {:.1} ms \
                 ({:.4} normalized) vs baseline {:.1} ms ({:.4}) — the speculative \
                 placement/conflict-repair path got slower relative to the same-machine \
                 scratch solve",
                (cur_ratio / base_ratio - 1.0) * 100.0,
                PLACE_STAGE_REGRESSION * 100.0,
                cur_place,
                cur_ratio,
                base_place,
                base_ratio,
            ));
        }
    }
    let base_snap = baseline.snapshot_save_total_ms + baseline.snapshot_restore_total_ms;
    let cur_snap = current.snapshot_save_total_ms + current.snapshot_restore_total_ms;
    if base_snap >= MIN_STAGE_MS && cur_snap > 0.0 {
        // Machine-normalized like every other wall-clock gate: snapshot
        // overhead per unit of same-machine scratch-GD time. Bounds the
        // kill-and-resume cost so warm restart stays cheap relative to
        // the cold solve it exists to avoid.
        let cur_ratio = cur_snap / current.scratch_total_ms.max(MIN_SCRATCH_MS);
        let base_ratio = base_snap / baseline.scratch_total_ms.max(MIN_SCRATCH_MS);
        if cur_ratio > base_ratio * (1.0 + SNAPSHOT_REGRESSION) {
            reasons.push(format!(
                "snapshot overhead regressed {:.0}% (limit {:.0}%): save+restore {:.1} ms \
                 ({:.4} normalized) vs baseline {:.1} ms ({:.4}) — warm restart is getting \
                 expensive relative to the same-machine scratch solve",
                (cur_ratio / base_ratio - 1.0) * 100.0,
                SNAPSHOT_REGRESSION * 100.0,
                cur_snap,
                cur_ratio,
                base_snap,
                base_ratio,
            ));
        }
    }
    if let (Some(cq), Some(bq)) = (&current.quantiles, &baseline.quantiles) {
        // v4 tail gate: the refine-stage p99 per batch, machine-normalized
        // against the same-machine scratch solve like every other
        // wall-clock gate. The stage *totals* let one pathological batch
        // average away across the run; the p99 is where a GD pair that
        // stopped converging surfaces first. Same `max_regression` budget
        // as the headline ratio. Engaged only when both sides carry
        // quantiles and the baseline's tail is large enough to measure.
        if bq.refine_p99_ms >= MIN_STAGE_MS && cq.refine_p99_ms > 0.0 {
            let cur_ratio = cq.refine_p99_ms / current.scratch_total_ms.max(MIN_SCRATCH_MS);
            let base_ratio = bq.refine_p99_ms / baseline.scratch_total_ms.max(MIN_SCRATCH_MS);
            if cur_ratio > base_ratio * (1.0 + max_regression) {
                reasons.push(format!(
                    "refine-stage p99 regressed {:.0}% (limit {:.0}%): {:.1} ms \
                     ({:.4} normalized) vs baseline {:.1} ms ({:.4}) — the refinement \
                     tail got slower relative to the same-machine scratch solve \
                     (refine_iters p99 {:.0} vs baseline {:.0})",
                    (cur_ratio / base_ratio - 1.0) * 100.0,
                    max_regression * 100.0,
                    cq.refine_p99_ms,
                    cur_ratio,
                    bq.refine_p99_ms,
                    base_ratio,
                    cq.refine_iters_p99,
                    bq.refine_iters_p99,
                ));
            }
        }
    }
    if let (Some(cur_p99), Some(base_p99)) = (current.lookup_p99_us, baseline.lookup_p99_us) {
        // v6 serving gate: p99 lookup latency per unit of same-machine
        // scratch-GD time. Both sides must carry the field — the gate
        // never engages against a stream_online (or pre-v6) baseline.
        // Unlike the stage gates, a sub-floor baseline *clamps* instead
        // of disarming: a healthy read path measures 0 µs at histogram
        // resolution, and a lock or per-call rebuild must still fire
        // against that baseline.
        let base_p99 = base_p99.max(MIN_LOOKUP_P99_US);
        let cur_ratio = cur_p99 / current.scratch_total_ms.max(MIN_SCRATCH_MS);
        let base_ratio = base_p99 / baseline.scratch_total_ms.max(MIN_SCRATCH_MS);
        if cur_ratio > base_ratio * (1.0 + LOOKUP_REGRESSION) {
            reasons.push(format!(
                "lookup p99 regressed {:.0}% (limit {:.0}%): {:.1} µs ({:.6} normalized) \
                 vs baseline {:.1} µs ({:.6}) — the published-view read path got slower \
                 relative to the same-machine scratch solve",
                (cur_ratio / base_ratio - 1.0) * 100.0,
                LOOKUP_REGRESSION * 100.0,
                cur_p99,
                cur_ratio,
                base_p99,
                base_ratio,
            ));
        }
    }
    if let (Some(cur_f), Some(base_f)) = (current.followers, baseline.followers) {
        // v8 replication gate: follower replay lag per unit of
        // same-machine scratch-GD time. Both sides must carry the
        // follower count (pre-v8 and follower-less baselines skip), and
        // the counts must match — replay work scales with followers.
        if cur_f != base_f {
            reasons.push(format!(
                "follower-count mismatch: run used {cur_f} followers, baseline {base_f} — \
                 gate each follower count against a baseline recorded at that count"
            ));
        } else if baseline.replay_total_ms >= MIN_STAGE_MS && current.replay_total_ms > 0.0 {
            let cur_ratio = current.replay_total_ms / current.scratch_total_ms.max(MIN_SCRATCH_MS);
            let base_ratio =
                baseline.replay_total_ms / baseline.scratch_total_ms.max(MIN_SCRATCH_MS);
            if cur_ratio > base_ratio * (1.0 + REPLAY_REGRESSION) {
                reasons.push(format!(
                    "follower replay lag regressed {:.0}% (limit {:.0}%): {:.1} ms \
                     ({:.4} normalized) vs baseline {:.1} ms ({:.4}) — followers are \
                     falling behind the leader relative to the same-machine scratch solve",
                    (cur_ratio / base_ratio - 1.0) * 100.0,
                    REPLAY_REGRESSION * 100.0,
                    current.replay_total_ms,
                    cur_ratio,
                    baseline.replay_total_ms,
                    base_ratio,
                ));
            }
        }
    }
    if let (Some(cur), Some(base)) = (current.rebalance_full_scans, baseline.rebalance_full_scans) {
        // Deterministic for a fixed workload (seeded, thread-invariant),
        // so any increase is a real candidate-quality regression of the
        // rebalance heaps, not noise.
        if cur > base {
            reasons.push(format!(
                "rebalance full scans increased: {cur} vs baseline {base} — the composite \
                 relief-key heaps are letting more steps fall back to full membership rescans"
            ));
        }
    }
    if reasons.is_empty() {
        Ok(())
    } else {
        Err(reasons.join("; "))
    }
}

/// Same-machine parallel-scaling check: the multi-threaded run's
/// incremental wall-clock must beat the serial run's by at least
/// `min_speedup` (e.g. `1.2`). Both records come from the same CI job, so
/// raw wall-clock *is* comparable here. This is what catches a silently
/// serialized `par_map` / round scheduler — the baseline gate alone
/// cannot, because it never compares thread counts.
pub fn check_parallel_speedup(
    parallel: &PerfRecord,
    serial: &PerfRecord,
    min_speedup: f64,
) -> Result<(), String> {
    if parallel.threads <= serial.threads {
        return Err(format!(
            "parallel record uses {} threads, serial record {} — nothing to compare",
            parallel.threads, serial.threads
        ));
    }
    let achieved = serial.inc_total_ms / parallel.inc_total_ms.max(1e-9);
    if achieved < min_speedup {
        return Err(format!(
            "threads={} incremental path is only {achieved:.2}x the threads={} run \
             (need >= {min_speedup:.2}x): {:.1}ms vs {:.1}ms",
            parallel.threads, serial.threads, parallel.inc_total_ms, serial.inc_total_ms
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(inc: f64, scratch: f64, eps_ok: bool, locality: f64) -> PerfRecord {
        PerfRecord {
            threads: 1,
            churn: 0.0,
            inc_total_ms: inc,
            scratch_total_ms: scratch,
            speedup: scratch / inc,
            eps_ok,
            final_locality: locality,
            final_imbalance: 0.048,
            validate_total_ms: inc * 0.05,
            split_total_ms: inc * 0.2,
            place_total_ms: inc * 0.4,
            repair_total_ms: inc * 0.05,
            commit_total_ms: inc * 0.1,
            refine_total_ms: inc * 0.2,
            placement_conflicts: Some(17),
            repair_passes: Some(3),
            rebalance_full_scans: Some(2),
            snapshot_save_total_ms: inc * 0.1,
            snapshot_restore_total_ms: inc * 0.15,
            snapshots: Some(2),
            // Time-valued quantiles derive from `inc` like the stage
            // totals so machine-speed cancellation holds; iteration
            // counts are machine-independent and stay fixed.
            quantiles: Some(PerfQuantiles {
                refine_iters_p50: 8.0,
                refine_iters_p99: 24.0,
                validate_p99_ms: inc * 0.02,
                split_p99_ms: inc * 0.08,
                place_p99_ms: inc * 0.15,
                repair_p99_ms: inc * 0.02,
                commit_p99_ms: inc * 0.04,
                refine_p99_ms: inc * 0.3,
            }),
            gd_full_recomputes: Some(40),
            gd_delta_iters: Some(360),
            lookups_per_sec: Some(4.0e6),
            // Time-valued like the stage totals: derives from `inc` so
            // machine-speed cancellation holds for the lookup gate too.
            lookup_p99_us: Some(inc * 0.4),
            split_parallel_ranges: Some(12),
            repair_spec_rounds: Some(2),
            compact_parallel_ms: Some(inc * 0.06),
            // Time-valued like the stage totals: derives from `inc` so
            // machine-speed cancellation holds for the replay gate too.
            replay_total_ms: inc * 0.5,
            replay_batches: Some(16),
            log_bytes: Some(8192),
            log_rotations: Some(2),
            followers: Some(2),
            batches: vec![BatchPerf {
                batch: 1,
                inc_ms: inc,
                scratch_ms: scratch,
                cut_edges: 1234,
                imbalance: 0.048,
                locality,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.threads, 1);
        assert!((parsed.speedup - 60.0).abs() < 1e-3);
        assert!(parsed.eps_ok);
        assert_eq!(parsed.batches.len(), 1);
        assert_eq!(parsed.batches[0].cut_edges, 1234);
        assert!((parsed.batches[0].inc_ms - 12.5).abs() < 1e-9);
        assert!((parsed.final_locality - 0.61).abs() < 1e-9);
    }

    #[test]
    fn parser_rejects_missing_and_malformed_fields() {
        assert!(PerfRecord::from_json("{}").is_err());
        assert!(PerfRecord::from_json("{\"threads\": 1}").is_err());
        let corrupted = record(10.0, 600.0, true, 0.6)
            .to_json()
            .replace("\"threads\": 1", "\"threads\": \"x\"");
        let err = PerfRecord::from_json(&corrupted).unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn gate_passes_equal_and_better_runs() {
        let base = record(10.0, 600.0, true, 0.60);
        assert!(check_regression(&base, &base, 0.30).is_ok());
        // 2x faster incremental path: obviously fine.
        let faster = record(5.0, 600.0, true, 0.60);
        assert!(check_regression(&faster, &base, 0.30).is_ok());
        // 25% slower: inside the 30% budget.
        let slower = record(12.5, 600.0, true, 0.60);
        assert!(check_regression(&slower, &base, 0.30).is_ok());
    }

    #[test]
    fn gate_fails_regressions() {
        let base = record(10.0, 600.0, true, 0.60);
        // 50% slower normalized wall-clock.
        let slow = record(15.0, 600.0, true, 0.60);
        let err = check_regression(&slow, &base, 0.30).unwrap_err();
        assert!(err.contains("normalized wall-clock"), "{err}");
        // ε violation fails even when fast.
        let broken = record(1.0, 600.0, false, 0.60);
        assert!(check_regression(&broken, &base, 0.30)
            .unwrap_err()
            .contains("ε"));
        // Quality collapse fails even when fast.
        let hollow = record(1.0, 600.0, true, 0.40);
        assert!(check_regression(&hollow, &base, 0.30)
            .unwrap_err()
            .contains("locality"));
    }

    #[test]
    fn pipeline_fields_round_trip_and_default_on_legacy_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert!((parsed.place_total_ms - 5.0).abs() < 1e-9);
        assert!((parsed.repair_total_ms - 0.625).abs() < 1e-9);
        assert_eq!(parsed.placement_conflicts, Some(17));
        assert_eq!(parsed.repair_passes, Some(3));
        assert_eq!(parsed.rebalance_full_scans, Some(2));
        // A legacy baseline (no pipeline fields at all) still parses:
        // stage totals default to 0, counters to None.
        let new_keys = [
            "validate_total_ms",
            "split_total_ms",
            "place_total_ms",
            "repair_total_ms",
            "commit_total_ms",
            "refine_total_ms",
            "placement_conflicts",
            "repair_passes",
            "rebalance_full_scans",
        ];
        let legacy = r
            .to_json()
            .lines()
            .filter(|l| new_keys.iter().all(|k| !l.contains(k)))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&legacy).unwrap();
        assert_eq!(parsed.place_total_ms, 0.0);
        assert_eq!(parsed.placement_conflicts, None);
        assert_eq!(parsed.rebalance_full_scans, None);
        // Present-but-malformed stage totals are an error, not a default.
        let corrupted = r
            .to_json()
            .replace("\"place_total_ms\": 5.000", "\"place_total_ms\": \"x\"");
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("place_total_ms"));
    }

    #[test]
    fn gate_catches_placement_stage_regression() {
        let base = record(10.0, 600.0, true, 0.60); // place+repair = 4.5 ms
                                                    // Total wall-clock within the 30% budget, but the placement stage
                                                    // alone blew up ~3.7x — exactly the shape of a serialized
                                                    // speculative fan-out on a refinement-heavy leg.
        let mut slow_place = record(12.0, 600.0, true, 0.60);
        slow_place.place_total_ms = 16.0;
        assert!(check_regression(&slow_place, &base, 0.30)
            .unwrap_err()
            .contains("placement stage regressed"));
        // Machine speed cancels: a 3x slower machine scales the stage
        // totals and the scratch denominator together (the record()
        // fixture derives stage totals from `inc`).
        let slow_machine = record(30.0, 1800.0, true, 0.60);
        assert!(check_regression(&slow_machine, &base, 0.30).is_ok());
        // Legacy baselines (stage totals 0) skip the stage gate.
        let mut legacy = record(10.0, 600.0, true, 0.60);
        legacy.place_total_ms = 0.0;
        legacy.repair_total_ms = 0.0;
        assert!(check_regression(&slow_place, &legacy, 0.30).is_ok());
    }

    #[test]
    fn snapshot_fields_round_trip_and_default_on_v2_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert!((parsed.snapshot_save_total_ms - 1.25).abs() < 1e-9);
        assert!((parsed.snapshot_restore_total_ms - 1.875).abs() < 1e-9);
        assert_eq!(parsed.snapshots, Some(2));
        // A v2 baseline (no snapshot keys) still parses: totals default to
        // 0, the cycle count to None — and the snapshot gate stays off.
        let v2 = r
            .to_json()
            .lines()
            .filter(|l| !l.contains("snapshot"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&v2).unwrap();
        assert_eq!(parsed.snapshot_save_total_ms, 0.0);
        assert_eq!(parsed.snapshot_restore_total_ms, 0.0);
        assert_eq!(parsed.snapshots, None);
        assert!(check_regression(&r, &parsed, 0.30).is_ok());
        // Present-but-malformed snapshot totals are an error, not 0.
        let corrupted = r.to_json().replace(
            "\"snapshot_save_total_ms\": 1.250",
            "\"snapshot_save_total_ms\": \"x\"",
        );
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("snapshot_save_total_ms"));
    }

    #[test]
    fn gate_catches_snapshot_overhead_regression() {
        let base = record(10.0, 600.0, true, 0.60); // save+restore = 2.5 ms
        let mut bloated = record(10.0, 600.0, true, 0.60);
        bloated.snapshot_save_total_ms = 4.0;
        bloated.snapshot_restore_total_ms = 3.0; // 7.0 ms, 2.8x the baseline
        let err = check_regression(&bloated, &base, 0.30).unwrap_err();
        assert!(err.contains("snapshot overhead regressed"), "{err}");
        // Inside the 2x band passes.
        let mut ok = record(10.0, 600.0, true, 0.60);
        ok.snapshot_save_total_ms = 2.0;
        ok.snapshot_restore_total_ms = 2.0;
        assert!(check_regression(&ok, &base, 0.30).is_ok());
        // Machine speed cancels out: 3x slower machine scales everything.
        let slow_machine = record(30.0, 1800.0, true, 0.60);
        assert!(check_regression(&slow_machine, &base, 0.30).is_ok());
        // A snapshot-free current run (totals 0) skips the gate, as does a
        // baseline whose totals are under the measurement floor.
        let mut snapless = record(10.0, 600.0, true, 0.60);
        snapless.snapshot_save_total_ms = 0.0;
        snapless.snapshot_restore_total_ms = 0.0;
        snapless.snapshots = None;
        assert!(check_regression(&snapless, &base, 0.30).is_ok());
        assert!(check_regression(&bloated, &snapless, 0.30).is_ok());
    }

    #[test]
    fn gate_fails_when_full_scans_increase() {
        let base = record(10.0, 600.0, true, 0.60);
        let mut worse = record(10.0, 600.0, true, 0.60);
        worse.rebalance_full_scans = Some(5);
        let err = check_regression(&worse, &base, 0.30).unwrap_err();
        assert!(err.contains("full scans increased"), "{err}");
        // Equal or fewer scans pass; a legacy side skips the check.
        let mut better = record(10.0, 600.0, true, 0.60);
        better.rebalance_full_scans = Some(0);
        assert!(check_regression(&better, &base, 0.30).is_ok());
        let mut legacy = record(10.0, 600.0, true, 0.60);
        legacy.rebalance_full_scans = None;
        assert!(check_regression(&worse, &legacy, 0.30).is_ok());
        assert!(check_regression(&legacy, &base, 0.30).is_ok());
    }

    #[test]
    fn gate_rejects_thread_count_mismatch() {
        let base = record(10.0, 600.0, true, 0.60);
        let mut four = record(5.0, 600.0, true, 0.60);
        four.threads = 4;
        let err = check_regression(&four, &base, 0.30).unwrap_err();
        assert!(err.contains("thread-count mismatch"), "{err}");
    }

    #[test]
    fn gate_rejects_churn_mismatch() {
        let base = record(10.0, 600.0, true, 0.60);
        let mut churned = record(10.0, 600.0, true, 0.60);
        churned.churn = 0.2;
        let err = check_regression(&churned, &base, 0.30).unwrap_err();
        assert!(err.contains("churn mismatch"), "{err}");
        // Matching churn fractions gate normally.
        let mut churn_base = base.clone();
        churn_base.churn = 0.2;
        assert!(check_regression(&churned, &churn_base, 0.30).is_ok());
    }

    #[test]
    fn churn_field_round_trips_and_defaults() {
        let mut r = record(12.5, 750.0, true, 0.61);
        r.churn = 0.2;
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert!((parsed.churn - 0.2).abs() < 1e-9);
        // Pre-churn baselines (no "churn" key) parse as add-only runs.
        let legacy = record(12.5, 750.0, true, 0.61)
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"churn\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&legacy).unwrap();
        assert_eq!(parsed.churn, 0.0);
        // A present-but-malformed churn value is a parse error, not 0.0.
        let corrupted = record(12.5, 750.0, true, 0.61)
            .to_json()
            .replace("\"churn\": 0.000", "\"churn\": \"x\"");
        let err = PerfRecord::from_json(&corrupted).unwrap_err();
        assert!(err.contains("churn"), "{err}");
    }

    #[test]
    fn gate_names_a_sub_floor_scratch_leg() {
        // A sub-millisecond scratch leg serializes as ~0.000 ms; the gate
        // must refuse with a named error instead of comparing inf/NaN.
        let base = record(10.0, 600.0, true, 0.60);
        let degenerate = record(0.01, 0.0, true, 0.60);
        assert!(degenerate.normalized_wallclock().is_finite());
        let err = check_regression(&degenerate, &base, 0.30).unwrap_err();
        assert!(err.contains("unusable scratch reference"), "{err}");
        assert!(err.contains("current run"), "{err}");
        // Same for a poisoned committed baseline.
        let err = check_regression(&base, &degenerate, 0.30).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        // And round-tripping the degenerate record through JSON keeps the
        // verdict (0.0 stays 0.0, not NaN).
        let reparsed = PerfRecord::from_json(&degenerate.to_json()).unwrap();
        assert!(check_regression(&reparsed, &base, 0.30).is_err());
    }

    #[test]
    fn parallel_speedup_check() {
        let serial = record(100.0, 600.0, true, 0.60);
        let mut par = record(60.0, 600.0, true, 0.60);
        par.threads = 4;
        assert!(check_parallel_speedup(&par, &serial, 1.2).is_ok());
        // 1.05x is below the 1.2x bar.
        par.inc_total_ms = 95.0;
        let err = check_parallel_speedup(&par, &serial, 1.2).unwrap_err();
        assert!(err.contains("only 1.05x"), "{err}");
        // Equal thread counts are a misuse, not a pass.
        let same = record(1.0, 600.0, true, 0.60);
        assert!(check_parallel_speedup(&same, &serial, 1.2).is_err());
    }

    #[test]
    fn quantiles_round_trip_and_default_on_v3_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        let q = parsed.quantiles.as_ref().unwrap();
        assert!((q.refine_iters_p50 - 8.0).abs() < 1e-9);
        assert!((q.refine_iters_p99 - 24.0).abs() < 1e-9);
        assert!((q.refine_p99_ms - 3.75).abs() < 1e-9);
        assert!((q.validate_p99_ms - 0.25).abs() < 1e-9);
        // A v3 baseline (no quantile keys) still parses: quantiles None,
        // and re-rendering it emits no quantile block.
        let v3 = r
            .to_json()
            .lines()
            .filter(|l| !l.contains("_p99") && !l.contains("_p50"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&v3).unwrap();
        assert_eq!(parsed.quantiles, None);
        assert!(!parsed.to_json().contains("refine_iters_p99"));
        // Same for a v2 baseline (no snapshot keys either).
        let v2 = v3
            .lines()
            .filter(|l| !l.contains("snapshot"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(PerfRecord::from_json(&v2).unwrap().quantiles, None);
        // Present-but-malformed quantiles are an error, not a default.
        let corrupted = r
            .to_json()
            .replace("\"refine_p99_ms\": 3.750", "\"refine_p99_ms\": \"x\"");
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("refine_p99_ms"));
    }

    #[test]
    fn gd_counters_round_trip_and_default_on_v4_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.gd_full_recomputes, Some(40));
        assert_eq!(parsed.gd_delta_iters, Some(360));
        // A v4 baseline (no delta-gradient counters) still parses: both
        // None, and re-rendering it emits neither key. The counters are
        // informational, so the gate never reads them — no gate test.
        let v4 = r
            .to_json()
            .lines()
            .filter(|l| !l.contains("gd_full_recomputes") && !l.contains("gd_delta_iters"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&v4).unwrap();
        assert_eq!(parsed.gd_full_recomputes, None);
        assert_eq!(parsed.gd_delta_iters, None);
        assert!(!parsed.to_json().contains("gd_delta_iters"));
        // Present-but-malformed counters are an error, not a default.
        let corrupted = r
            .to_json()
            .replace("\"gd_delta_iters\": 360", "\"gd_delta_iters\": \"x\"");
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("gd_delta_iters"));
    }

    #[test]
    fn lookup_fields_round_trip_and_default_on_v5_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.lookups_per_sec, Some(4.0e6));
        assert!((parsed.lookup_p99_us.unwrap() - 5.0).abs() < 1e-9);
        // A v5 baseline (no serving keys) still parses: both None, the
        // lookup gate stays off, and re-rendering emits neither key.
        let v5 = r
            .to_json()
            .lines()
            .filter(|l| !l.contains("lookup"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&v5).unwrap();
        assert_eq!(parsed.lookups_per_sec, None);
        assert_eq!(parsed.lookup_p99_us, None);
        assert!(!parsed.to_json().contains("lookup"));
        assert!(check_regression(&r, &parsed, 0.30).is_ok());
        // Present-but-malformed serving fields are an error, not None.
        let corrupted = r
            .to_json()
            .replace("\"lookup_p99_us\": 5.000", "\"lookup_p99_us\": \"x\"");
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("lookup_p99_us"));
    }

    #[test]
    fn stage_parallelism_fields_round_trip_and_default_on_v6_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.split_parallel_ranges, Some(12));
        assert_eq!(parsed.repair_spec_rounds, Some(2));
        assert!((parsed.compact_parallel_ms.unwrap() - 0.75).abs() < 1e-9);
        // A v6 baseline (no stage-parallelism keys) still parses: all
        // None, and re-rendering it emits none of the keys. The fields
        // are informational, so the gate never reads them — no gate test.
        let v6 = r
            .to_json()
            .lines()
            .filter(|l| {
                !l.contains("split_parallel_ranges")
                    && !l.contains("repair_spec_rounds")
                    && !l.contains("compact_parallel_ms")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&v6).unwrap();
        assert_eq!(parsed.split_parallel_ranges, None);
        assert_eq!(parsed.repair_spec_rounds, None);
        assert_eq!(parsed.compact_parallel_ms, None);
        assert!(!parsed.to_json().contains("repair_spec_rounds"));
        // Present-but-malformed fields are an error, not a default.
        let corrupted = r
            .to_json()
            .replace("\"repair_spec_rounds\": 2", "\"repair_spec_rounds\": \"x\"");
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("repair_spec_rounds"));
    }

    #[test]
    fn replication_fields_round_trip_and_default_on_v7_baselines() {
        let r = record(12.5, 750.0, true, 0.61);
        let parsed = PerfRecord::from_json(&r.to_json()).unwrap();
        assert!((parsed.replay_total_ms - 6.25).abs() < 1e-9);
        assert_eq!(parsed.replay_batches, Some(16));
        assert_eq!(parsed.log_bytes, Some(8192));
        assert_eq!(parsed.log_rotations, Some(2));
        assert_eq!(parsed.followers, Some(2));
        // A v7 baseline (no replication keys) still parses: the total
        // defaults to 0, the counters to None, the replay gate stays off
        // — and re-rendering it emits none of the keys.
        let v7_keys = [
            "replay_total_ms",
            "replay_batches",
            "log_bytes",
            "log_rotations",
            "followers",
        ];
        let v7 = r
            .to_json()
            .lines()
            .filter(|l| v7_keys.iter().all(|k| !l.contains(k)))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfRecord::from_json(&v7).unwrap();
        assert_eq!(parsed.replay_total_ms, 0.0);
        assert_eq!(parsed.replay_batches, None);
        assert_eq!(parsed.followers, None);
        assert!(!parsed.to_json().contains("replay_total_ms"));
        assert!(check_regression(&r, &parsed, 0.30).is_ok());
        // Present-but-malformed replication fields are an error, not a
        // default.
        let corrupted = r
            .to_json()
            .replace("\"replay_total_ms\": 6.250", "\"replay_total_ms\": \"x\"");
        assert!(PerfRecord::from_json(&corrupted)
            .unwrap_err()
            .contains("replay_total_ms"));
    }

    #[test]
    fn gate_catches_replay_lag_regression() {
        let base = record(10.0, 600.0, true, 0.60); // replay_total = 5.0 ms
        let mut lagging = record(10.0, 600.0, true, 0.60);
        lagging.replay_total_ms = 15.0; // 3x the baseline, past the 2x band
        let err = check_regression(&lagging, &base, 0.30).unwrap_err();
        assert!(err.contains("follower replay lag regressed"), "{err}");
        // Inside the 2x band passes.
        let mut ok = record(10.0, 600.0, true, 0.60);
        ok.replay_total_ms = 9.0;
        assert!(check_regression(&ok, &base, 0.30).is_ok());
        // Machine speed cancels: a 3x slower machine scales replay and
        // the scratch denominator together.
        let slow_machine = record(30.0, 1800.0, true, 0.60);
        assert!(check_regression(&slow_machine, &base, 0.30).is_ok());
        // Either side without a follower count (stream_online or pre-v8
        // record) → gate off, even against a regressed run.
        let mut legacy = record(10.0, 600.0, true, 0.60);
        legacy.followers = None;
        legacy.replay_total_ms = 0.0;
        assert!(check_regression(&lagging, &legacy, 0.30).is_ok());
        assert!(check_regression(&legacy, &base, 0.30).is_ok());
        // A follower-count mismatch is its own failure, not a comparison.
        let mut three = record(10.0, 600.0, true, 0.60);
        three.followers = Some(3);
        let err = check_regression(&three, &base, 0.30).unwrap_err();
        assert!(err.contains("follower-count mismatch"), "{err}");
        // A sub-floor baseline replay total disarms the lag band (but
        // the count check above still ran).
        let mut tiny = record(10.0, 600.0, true, 0.60);
        tiny.replay_total_ms = 0.4;
        assert!(check_regression(&lagging, &tiny, 0.30).is_ok());
    }

    #[test]
    fn gate_catches_lookup_p99_regression() {
        let base = record(10.0, 600.0, true, 0.60); // lookup_p99 = 4.0 µs
        let mut slow = record(10.0, 600.0, true, 0.60);
        slow.lookup_p99_us = Some(12.0); // 3x the baseline, past the 2x band
        let err = check_regression(&slow, &base, 0.30).unwrap_err();
        assert!(err.contains("lookup p99 regressed"), "{err}");
        // Inside the 2x band passes.
        let mut ok = record(10.0, 600.0, true, 0.60);
        ok.lookup_p99_us = Some(7.0);
        assert!(check_regression(&ok, &base, 0.30).is_ok());
        // Machine speed cancels: a 3x slower machine scales the lookup
        // tail and the scratch denominator together.
        let slow_machine = record(30.0, 1800.0, true, 0.60);
        assert!(check_regression(&slow_machine, &base, 0.30).is_ok());
        // Either side without the field (stream_online or pre-v6 record)
        // → gate off, even when the other side regressed.
        let mut legacy = record(10.0, 600.0, true, 0.60);
        legacy.lookup_p99_us = None;
        legacy.lookups_per_sec = None;
        assert!(check_regression(&slow, &legacy, 0.30).is_ok());
        assert!(check_regression(&legacy, &base, 0.30).is_ok());
        // A sub-floor baseline (a healthy run measures p99 = 0 µs at
        // histogram resolution) clamps to the floor instead of disarming:
        // 12 µs against a clamped 1 µs baseline still fires…
        let mut tiny = record(10.0, 600.0, true, 0.60);
        tiny.lookup_p99_us = Some(0.0);
        let err = check_regression(&slow, &tiny, 0.30).unwrap_err();
        assert!(err.contains("lookup p99 regressed"), "{err}");
        // …while staying inside the clamped band passes (0 µs vs 0 µs is
        // the steady state of every healthy baseline comparison).
        let mut still_fast = record(10.0, 600.0, true, 0.60);
        still_fast.lookup_p99_us = Some(1.8);
        assert!(check_regression(&still_fast, &tiny, 0.30).is_ok());
        assert!(check_regression(&tiny, &tiny, 0.30).is_ok());
    }

    #[test]
    fn gate_catches_refine_tail_regression() {
        let base = record(10.0, 600.0, true, 0.60); // refine_p99 = 3.0 ms
                                                    // Totals unchanged — one pathological batch hides in the averages —
                                                    // but the refine tail blew up 2x, past the 30% budget.
        let mut tail = record(10.0, 600.0, true, 0.60);
        tail.quantiles.as_mut().unwrap().refine_p99_ms = 6.0;
        let err = check_regression(&tail, &base, 0.30).unwrap_err();
        assert!(err.contains("refine-stage p99 regressed"), "{err}");
        // Inside the budget passes.
        let mut ok = record(10.0, 600.0, true, 0.60);
        ok.quantiles.as_mut().unwrap().refine_p99_ms = 3.5;
        assert!(check_regression(&ok, &base, 0.30).is_ok());
        // Machine speed cancels: a 3x slower machine scales the tail and
        // the scratch denominator together.
        let slow_machine = record(30.0, 1800.0, true, 0.60);
        assert!(check_regression(&slow_machine, &base, 0.30).is_ok());
        // Either side legacy (no quantiles) → gate off.
        let mut legacy = record(10.0, 600.0, true, 0.60);
        legacy.quantiles = None;
        assert!(check_regression(&tail, &legacy, 0.30).is_ok());
        assert!(check_regression(&legacy, &base, 0.30).is_ok());
        // A baseline tail under the measurement floor → gate off.
        let mut tiny = record(10.0, 600.0, true, 0.60);
        tiny.quantiles.as_mut().unwrap().refine_p99_ms = 0.4;
        assert!(check_regression(&tail, &tiny, 0.30).is_ok());
    }

    #[test]
    fn machine_speed_cancels_out() {
        // A 3x slower machine scales both inc and scratch: the gate must
        // not fire.
        let base = record(10.0, 600.0, true, 0.60);
        let slow_machine = record(30.0, 1800.0, true, 0.60);
        assert!(check_regression(&slow_machine, &base, 0.30).is_ok());
    }
}
