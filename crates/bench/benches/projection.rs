//! Projection-step cost (Theorem 1.1: `O(|E| + |V| log^{d−1} |V|)` per GD
//! step; the projection part is the `|V| log^{d−1} |V|` term). Benchmarks
//! every method at d ∈ {1, 2} across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbgp_core::config::ProjectionMethod;
use mdbgp_core::feasible::FeasibleRegion;
use mdbgp_core::projection::project;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn instance(n: usize, d: usize, seed: u64) -> (Vec<f64>, FeasibleRegion) {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = (0..d)
        .map(|_| (0..n).map(|_| rng.gen_range(0.5..5.0)).collect())
        .collect();
    let y = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    (y, FeasibleRegion::symmetric(weights, 0.01))
}

fn bench_projection(c: &mut Criterion) {
    for d in [1usize, 2] {
        let mut group = c.benchmark_group(format!("projection_d{d}"));
        for n in [10_000usize, 100_000] {
            let (y, region) = instance(n, d, 7);
            for method in [
                ProjectionMethod::OneShotAlternating,
                ProjectionMethod::AlternatingConverged,
                ProjectionMethod::Dykstra,
                ProjectionMethod::Exact,
            ] {
                group.bench_with_input(BenchmarkId::new(format!("{method:?}"), n), &n, |b, _| {
                    b.iter(|| black_box(project(method, black_box(&y), &region)))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
