//! BSP simulator throughput: PageRank supersteps per second under good and
//! bad placements (message routing dominates; locality reduces the remote
//! bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mdbgp_baselines::HashPartitioner;
use mdbgp_bsp::{apps::PageRank, BspEngine, CostModel};
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::gen::{community_graph, CommunityGraphConfig};
use mdbgp_graph::{Partitioner, VertexWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bsp(c: &mut Criterion) {
    let cg = community_graph(
        &CommunityGraphConfig::social(20_000),
        &mut StdRng::seed_from_u64(4),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let hash = HashPartitioner.partition(&cg.graph, &w, 16, 3).unwrap();
    let gd = GdPartitioner::new(GdConfig {
        iterations: 40,
        ..GdConfig::with_epsilon(0.05)
    })
    .partition(&cg.graph, &w, 16, 3)
    .unwrap();

    let mut group = c.benchmark_group("bsp_pagerank_10iter");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10 * 2 * cg.graph.num_edges() as u64));
    let app = PageRank {
        damping: 0.85,
        iterations: 10,
    };
    for (name, partition) in [("hash_placement", &hash), ("gd_placement", &gd)] {
        let engine = BspEngine::new(&cg.graph, partition, CostModel::default());
        group.bench_function(name, |b| b.iter(|| black_box(engine.run(&app))));
    }
    group.finish();
}

criterion_group!(benches, bench_bsp);
criterion_main!(benches);
