//! End-to-end partitioner comparison on a fixed proxy graph (the
//! running-time columns of Table 3 in microbenchmark form).

use criterion::{criterion_group, criterion_main, Criterion};
use mdbgp_baselines::{
    BlpPartitioner, HashPartitioner, MetisPartitioner, ShpPartitioner, SpinnerPartitioner,
};
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::gen::{community_graph, CommunityGraphConfig};
use mdbgp_graph::{Partitioner, VertexWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let cg = community_graph(
        &CommunityGraphConfig::social(10_000),
        &mut StdRng::seed_from_u64(2),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let gd = GdPartitioner::new(GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(0.05)
    });
    let spinner = SpinnerPartitioner::default();
    let blp = BlpPartitioner::default();
    let shp = ShpPartitioner::default();
    let metis = MetisPartitioner::default();
    let hash = HashPartitioner;
    let algos: [&dyn Partitioner; 6] = [&hash, &gd, &spinner, &blp, &shp, &metis];

    let mut group = c.benchmark_group("partitioners_k4_n10k");
    group.sample_size(10);
    for algo in algos {
        group.bench_function(algo.name(), |b| {
            b.iter(|| black_box(algo.partition(&cg.graph, &w, 4, 9).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
