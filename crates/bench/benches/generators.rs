//! Synthetic graph generator throughput (edges per second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mdbgp_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    group.throughput(Throughput::Elements(16 * 65536));
    group.bench_function("rmat_s16_e16", |b| {
        b.iter(|| {
            black_box(gen::rmat(
                gen::RmatConfig::graph500(16, 16),
                &mut StdRng::seed_from_u64(1),
            ))
        })
    });

    group.throughput(Throughput::Elements(8 * 50_000));
    group.bench_function("chung_lu_50k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let w = gen::power_law_sequence(50_000, 2.3, 4.0, 1000.0, &mut rng);
        b.iter(|| black_box(gen::chung_lu(&w, &mut StdRng::seed_from_u64(3))))
    });

    group.throughput(Throughput::Elements(8 * 50_000));
    group.bench_function("community_50k", |b| {
        let cfg = gen::CommunityGraphConfig::social(50_000);
        b.iter(|| black_box(gen::community_graph(&cfg, &mut StdRng::seed_from_u64(4))))
    });

    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
