//! Streaming-subsystem micro-benchmarks: batch ingestion (placement only),
//! ingestion with a forced refinement, and the from-scratch GD solve the
//! incremental path replaces.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::{gen, InducedSubgraph, Partitioner, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: usize = 8_000;
const ARRIVALS: usize = 200;
const K: usize = 4;
const EPS: f64 = 0.05;

fn setup() -> (StreamingPartitioner, UpdateBatch) {
    let total = N + ARRIVALS;
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(total),
        &mut StdRng::seed_from_u64(9),
    );
    let prefix: Vec<u32> = (0..N as u32).collect();
    let boot = InducedSubgraph::extract(&cg.graph, &prefix);
    let weights = VertexWeights::vertex_edge(&boot.graph);
    let mut cfg = StreamConfig::new(K, EPS);
    cfg.gd = GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(EPS)
    };
    let sp = StreamingPartitioner::bootstrap(boot.graph.clone(), weights, cfg).unwrap();

    let mut batch = UpdateBatch::new();
    for v in N as u32..total as u32 {
        let backward: Vec<u32> = cg
            .graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| u < v)
            .collect();
        let w = backward.len().max(1) as f64;
        batch.add_vertex(vec![1.0, w], backward);
    }
    (sp, batch)
}

/// `StreamingPartitioner` deliberately does not implement `Clone` (it is a
/// stateful service); rebuild from the same bootstrap state instead.
fn rebuild(sp: &StreamingPartitioner) -> StreamingPartitioner {
    let graph = sp.graph().snapshot();
    let weights = sp.graph().weights().clone();
    let partition = sp.partition();
    let mut cfg = StreamConfig::new(K, EPS);
    cfg.gd = GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(EPS)
    };
    StreamingPartitioner::from_partition(graph, weights, &partition, cfg).unwrap()
}

fn bench_stream(c: &mut Criterion) {
    let (sp0, batch) = setup();

    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ARRIVALS as u64));

    group.bench_function("ingest_batch", |b| {
        b.iter_batched(
            || rebuild(&sp0),
            |mut sp| sp.ingest(black_box(&batch)).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("ingest_plus_refine", |b| {
        b.iter_batched(
            || rebuild(&sp0),
            |mut sp| {
                sp.ingest(black_box(&batch)).unwrap();
                sp.refine_now().unwrap()
            },
            BatchSize::LargeInput,
        )
    });

    // The offline alternative the incremental path replaces.
    let mut sp_full = rebuild(&sp0);
    sp_full.ingest(&batch).unwrap();
    let snapshot = sp_full.graph().snapshot();
    let weights = sp_full.graph().weights().clone();
    group.bench_function("scratch_gd_solve", |b| {
        b.iter(|| {
            GdPartitioner::new(GdConfig {
                iterations: 60,
                ..GdConfig::with_epsilon(EPS)
            })
            .partition(black_box(&snapshot), black_box(&weights), K, 3)
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
