//! Full GD iterations (mat-vec + one-shot projection + fixing) and
//! end-to-end bipartitions — the cost the paper's Figure 11 scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdbgp_core::gd::{bipartition, SplitTarget};
use mdbgp_core::GdConfig;
use mdbgp_graph::gen::{community_graph, CommunityGraphConfig};
use mdbgp_graph::VertexWeights;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gd(c: &mut Criterion) {
    let mut group = c.benchmark_group("gd_bipartition");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let cg = community_graph(
            &CommunityGraphConfig::social(n),
            &mut StdRng::seed_from_u64(1),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        group.throughput(Throughput::Elements(cg.graph.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("20_iterations", n), &n, |b, _| {
            let cfg = GdConfig {
                iterations: 20,
                ..GdConfig::with_epsilon(0.03)
            };
            b.iter(|| {
                black_box(bipartition(&cg.graph, &w, &cfg, &SplitTarget::half(0.03), 5).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gd);
criterion_main!(benches);
