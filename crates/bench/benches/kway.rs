//! The `O(k·|E|)` iteration cost of the direct k-way relaxation
//! (paper §3.3): per-iteration time should grow linearly in k, which is
//! exactly why the paper prefers recursive bisection at large k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbgp_core::{GdConfig, KWayGdPartitioner};
use mdbgp_graph::gen::{community_graph, CommunityGraphConfig};
use mdbgp_graph::{Partitioner, VertexWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kway(c: &mut Criterion) {
    let cg = community_graph(
        &CommunityGraphConfig::social(5_000),
        &mut StdRng::seed_from_u64(6),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut group = c.benchmark_group("kway_direct_10iter");
    group.sample_size(10);
    for k in [2usize, 4, 8, 16] {
        let kway = KWayGdPartitioner::new(GdConfig {
            iterations: 10,
            ..GdConfig::with_epsilon(0.1)
        });
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(kway.partition(&cg.graph, &w, k, 3).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kway);
criterion_main!(benches);
