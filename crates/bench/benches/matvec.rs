//! Gradient mat-vec throughput — the `O(|E|)` term of Theorem 1.1 and its
//! `O(|E|/m)` multi-threaded scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdbgp_core::matvec::{matvec, matvec_parallel};
use mdbgp_graph::gen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_matvec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = gen::rmat(gen::RmatConfig::graph500(17, 16), &mut rng);
    let n = g.num_vertices();
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("matvec");
    group.throughput(Throughput::Elements(2 * g.num_edges() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| matvec(black_box(&g), black_box(&x), &mut out))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| matvec_parallel(black_box(&g), black_box(&x), &mut out, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matvec);
criterion_main!(benches);
