//! Regression test for post-purge crash-and-resume through `mdbgp_cli
//! stream`: a churned run killed mid-stream with `--purge-before-save`
//! leaves a snapshot at id epoch ≥ 1 whose engine ids no longer match
//! the input file's original ids — the resume trailer's id map is what
//! makes `--load-snapshot` able to continue the replay anyway. (The old
//! code rejected every such snapshot with `StaleEpoch`/a churn error.)

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mdbgp_cli"))
        .args(args)
        .output()
        .expect("spawn mdbgp_cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdbgp-cli-resume-{tag}-{}", std::process::id()));
    // A leftover directory from a previous run of this same pid is stale.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Extracts the number following `needle` in `haystack`.
fn number_after(haystack: &str, needle: &str) -> u64 {
    let at = haystack
        .find(needle)
        .unwrap_or_else(|| panic!("'{needle}' not found in:\n{haystack}"));
    haystack[at + needle.len()..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("no number after '{needle}' in:\n{haystack}"))
}

#[test]
fn kill_and_resume_after_forced_purge() {
    let dir = scratch_dir("purge");
    let graph = dir.join("g.txt");
    let snap = dir.join("snap.bin");
    let parts = dir.join("parts.txt");

    let (ok, _, err) = run(&[
        "generate",
        "--model",
        "community",
        "--n",
        "600",
        "--seed",
        "3",
        "--output",
        graph.to_str().unwrap(),
    ]);
    assert!(ok, "generate failed: {err}");

    // Phase 1: stream with churn, "crash" after 3 batches, force a
    // purging compaction before the save so the snapshot's id space is
    // post-purge (id epoch ≥ 1) with original ids remapped.
    let (ok, stdout, err) = run(&[
        "stream",
        "--input",
        graph.to_str().unwrap(),
        "--k",
        "4",
        "--batches",
        "6",
        "--churn",
        "0.3",
        "--seed",
        "7",
        "--stop-after",
        "3",
        "--purge-before-save",
        "true",
        "--save-snapshot",
        snap.to_str().unwrap(),
    ]);
    assert!(ok, "phase-1 stream failed: {err}\n{stdout}");
    assert!(
        stdout.contains("purged before save"),
        "missing purge line:\n{stdout}"
    );
    let saved_epoch = number_after(&stdout, "purged before save: id epoch");
    assert!(
        saved_epoch >= 1,
        "forced purge left id epoch {saved_epoch}, snapshot is not post-purge:\n{stdout}"
    );

    // Phase 2: resume from the post-purge snapshot and stream to the
    // end. Pre-fix this failed before ingesting anything (StaleEpoch /
    // the removed-vertices rejection).
    let (ok, stdout, err) = run(&[
        "stream",
        "--input",
        graph.to_str().unwrap(),
        "--k",
        "4",
        "--batches",
        "6",
        "--churn",
        "0.3",
        "--seed",
        "7",
        "--load-snapshot",
        snap.to_str().unwrap(),
        "--output",
        parts.to_str().unwrap(),
    ]);
    assert!(ok, "resume failed: {err}\n{stdout}");
    assert!(
        stdout.contains("resumed from"),
        "missing resume line:\n{stdout}"
    );
    assert!(stdout.contains("done:"), "stream did not finish:\n{stdout}");

    // The assignment covers the surviving original ids: `orig part`
    // pairs, parts within k, and a sane surviving count (600 minus the
    // churned-away vertices, which at 30% churn of the streamed suffix
    // is well under 600 but most of it).
    let assignment = std::fs::read_to_string(&parts).expect("read parts");
    let mut survivors = 0usize;
    for line in assignment.lines() {
        let mut it = line.split_whitespace();
        let orig: u32 = it.next().unwrap().parse().expect("orig id");
        let part: u32 = it.next().unwrap().parse().expect("part id");
        assert!(orig < 600, "original id {orig} out of range");
        assert!(part < 4, "part {part} out of range");
        survivors += 1;
    }
    assert!(
        survivors > 400 && survivors <= 600,
        "implausible survivor count {survivors}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trailer_less_snapshots_keep_the_legacy_guardrails() {
    let dir = scratch_dir("legacy");
    let graph = dir.join("g.txt");
    let snap = dir.join("snap.bin");

    let (ok, _, err) = run(&[
        "generate",
        "--model",
        "community",
        "--n",
        "400",
        "--seed",
        "5",
        "--output",
        graph.to_str().unwrap(),
    ]);
    assert!(ok, "generate failed: {err}");

    // Save a churn-free snapshot, then strip the trailer to simulate a
    // file written by an older build.
    let (ok, stdout, err) = run(&[
        "stream",
        "--input",
        graph.to_str().unwrap(),
        "--k",
        "4",
        "--batches",
        "5",
        "--seed",
        "9",
        "--stop-after",
        "2",
        "--save-snapshot",
        snap.to_str().unwrap(),
    ]);
    assert!(ok, "save run failed: {err}\n{stdout}");
    let bytes = std::fs::read(&snap).expect("read snapshot");
    let magic = b"MDBGPRPL";
    let trailer_at = (0..bytes.len().saturating_sub(magic.len()))
        .rfind(|&i| &bytes[i..i + magic.len()] == magic)
        .expect("trailer magic in snapshot file");
    std::fs::write(&snap, &bytes[..trailer_at]).expect("strip trailer");

    // A churn-free epoch-0 legacy snapshot still resumes fine.
    let (ok, stdout, err) = run(&[
        "stream",
        "--input",
        graph.to_str().unwrap(),
        "--k",
        "4",
        "--batches",
        "5",
        "--seed",
        "9",
        "--load-snapshot",
        snap.to_str().unwrap(),
    ]);
    assert!(ok, "legacy resume failed: {err}\n{stdout}");
    assert!(stdout.contains("resumed from"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}
