//! Property-based tests over the core invariants of the reproduction:
//! projections land in the feasible region and are optimal for d = 1,
//! rounding preserves balance, partitions are well-formed for arbitrary
//! random graphs, and the relaxation's objective equals the cut count on
//! integral points.

use mdbgp::core::feasible::FeasibleRegion;
use mdbgp::core::projection::{exact1d, project};
use mdbgp::core::rounding;
use mdbgp::core::{GdConfig, GdPartitioner, ProjectionMethod};
use mdbgp::graph::{gen, Partition, Partitioner, VertexWeights};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn region_strategy(n: usize, d: usize) -> impl Strategy<Value = (Vec<f64>, FeasibleRegion)> {
    (
        proptest::collection::vec(-3.0..3.0f64, n),
        proptest::collection::vec(proptest::collection::vec(0.3..4.0f64, n), d),
        0.005..0.2f64,
    )
        .prop_map(|(y, weights, eps)| (y, FeasibleRegion::symmetric(weights, eps)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_1d_projection_hits_targets((y, region) in region_strategy(40, 1)) {
        let w = region.weight(0).to_vec();
        let total: f64 = w.iter().sum();
        let c = 0.07 * total;
        let (x, _) = exact1d::project_equality_1d(&y, &w, c).expect("feasible");
        let s: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        prop_assert!((s - c).abs() < 1e-6 * (1.0 + total));
        prop_assert!(x.iter().all(|&v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn breakpoint_and_bisection_solvers_agree((y, region) in region_strategy(30, 1)) {
        let w = region.weight(0).to_vec();
        let total: f64 = w.iter().sum();
        for &frac in &[0.0, 0.25, -0.6] {
            let c = frac * total;
            let (xa, _) = exact1d::project_equality_1d(&y, &w, c).unwrap();
            let (xb, _) = exact1d::project_equality_1d_bisect(&y, &w, c, 200).unwrap();
            for (a, b) in xa.iter().zip(&xb) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn every_projection_method_lands_in_the_cube((y, region) in region_strategy(50, 2)) {
        for method in [
            ProjectionMethod::OneShotAlternating,
            ProjectionMethod::AlternatingConverged,
            ProjectionMethod::Dykstra,
            ProjectionMethod::Exact,
        ] {
            let x = project(method, &y, &region);
            prop_assert_eq!(x.len(), y.len());
            prop_assert!(x.iter().all(|&v| v.abs() <= 1.0 + 1e-9), "{:?}", method);
        }
    }

    #[test]
    fn convergent_methods_land_in_the_region((y, region) in region_strategy(50, 2)) {
        for method in [
            ProjectionMethod::AlternatingConverged,
            ProjectionMethod::Dykstra,
            ProjectionMethod::Exact,
        ] {
            let x = project(method, &y, &region);
            prop_assert!(
                region.max_violation(&x) < 1e-6,
                "{:?} violated by {}", method, region.max_violation(&x)
            );
        }
    }

    #[test]
    fn exact_is_weakly_closer_than_dykstra((y, region) in region_strategy(40, 2)) {
        let xe = project(ProjectionMethod::Exact, &y, &region);
        let xd = project(ProjectionMethod::Dykstra, &y, &region);
        let de: f64 = xe.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        let dd: f64 = xd.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        prop_assert!(de.sqrt() <= dd.sqrt() + 1e-5, "exact {de} vs dykstra {dd}");
    }

    #[test]
    fn rounding_repair_reaches_balance(seed in 0u64..500) {
        // Fractional zero vector, unit weights: repair must always succeed.
        let n = 400;
        let x = vec![0.0; n];
        let region = FeasibleRegion::symmetric(vec![vec![1.0; n]], 0.03);
        let mut rng = StdRng::seed_from_u64(seed);
        let (signs, violation) = rounding::round_balanced(&x, &region, 4, &mut rng);
        prop_assert_eq!(violation, 0.0);
        prop_assert_eq!(signs.len(), n);
    }

    #[test]
    fn objective_equals_uncut_minus_cut_on_integral_points(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..120),
        signs in proptest::collection::vec(prop_oneof![Just(1i8), Just(-1i8)], 40),
    ) {
        let g = mdbgp::graph::builder::graph_from_edges(40, &edges);
        let x: Vec<f64> = signs.iter().map(|&s| s as f64).collect();
        let f = mdbgp::core::matvec::quadratic_form(&g, &x);
        let p = Partition::from_signs(&signs);
        let cut = p.cut_edges(&g) as f64;
        let uncut = g.num_edges() as f64 - cut;
        prop_assert!((f - (uncut - cut)).abs() < 1e-9, "f={f} uncut={uncut} cut={cut}");
    }

    #[test]
    fn gd_partitions_arbitrary_er_graphs(
        n in 24usize..120,
        edge_factor in 1usize..6,
        seed in 0u64..50,
    ) {
        let m = (n * edge_factor).min(n * (n - 1) / 2);
        let g = gen::erdos_renyi(n, m, &mut StdRng::seed_from_u64(seed));
        let w = VertexWeights::vertex_edge(&g);
        let gd = GdPartitioner::new(GdConfig { iterations: 25, ..GdConfig::with_epsilon(0.2) });
        let p = gd.partition(&g, &w, 2, seed).expect("gd on ER");
        prop_assert_eq!(p.num_vertices(), n);
        prop_assert_eq!(p.num_parts(), 2);
        // ε-balance on the unit dimension, with slack for odd n and integer
        // granularity: |V1| within (1 ± ε)·n/2 ± 1 vertex.
        let sizes = p.sizes();
        let half = n as f64 / 2.0;
        prop_assert!(
            (sizes[0] as f64 - half).abs() <= 0.2 * half + 1.0,
            "sizes {:?}", sizes
        );
    }
}
