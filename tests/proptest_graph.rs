//! Property tests over the graph substrate: CSR invariants, builder
//! idempotence, I/O round-trips, subgraph extraction and the analytics
//! oracles — the foundations every partitioner builds on.

use mdbgp::graph::builder::graph_from_edges;
use mdbgp::graph::{analytics, gen, io, InducedSubgraph, VertexWeights, WeightKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edges_strategy(n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_invariants_hold_for_arbitrary_edge_lists(edges in edges_strategy(50, 200)) {
        let g = graph_from_edges(50, &edges);
        // Handshake lemma.
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Adjacency sorted, no self-loops, symmetric.
        for v in g.vertices() {
            let adj = g.neighbors(v);
            prop_assert!(adj.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!adj.contains(&v));
            for &u in adj {
                prop_assert!(g.has_edge(u, v), "symmetry broken for ({u}, {v})");
            }
        }
        // edges() yields each edge exactly once with u < v.
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.num_edges());
        prop_assert!(listed.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn building_twice_is_idempotent(edges in edges_strategy(30, 120)) {
        let g1 = graph_from_edges(30, &edges);
        let rebuilt: Vec<_> = g1.edges().collect();
        let g2 = graph_from_edges(30, &rebuilt);
        prop_assert_eq!(g1, g2);
    }

    #[test]
    fn io_roundtrips_preserve_graphs(edges in edges_strategy(40, 150)) {
        let g = graph_from_edges(40, &edges);
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        prop_assert_eq!(&io::read_edge_list(&text[..]).unwrap(), &g);

        let mut metis = Vec::new();
        io::write_metis(&g, &mut metis).unwrap();
        prop_assert_eq!(&io::read_metis(&metis[..]).unwrap(), &g);

        let mut bin = Vec::new();
        io::write_binary(&g, &mut bin).unwrap();
        prop_assert_eq!(&io::read_binary(&bin[..]).unwrap(), &g);
    }

    #[test]
    fn induced_subgraph_is_exactly_the_restriction(
        edges in edges_strategy(40, 150),
        subset in proptest::collection::vec(0u32..40, 1..40),
    ) {
        let g = graph_from_edges(40, &edges);
        let sub = InducedSubgraph::extract(&g, &subset);
        // Every subgraph edge maps to a parent edge within the subset.
        for (a, b) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.to_original(a), sub.to_original(b)));
        }
        // Every parent edge with both ends in the subset appears.
        let expected = g
            .edges()
            .filter(|&(u, v)| sub.original.binary_search(&u).is_ok()
                && sub.original.binary_search(&v).is_ok())
            .count();
        prop_assert_eq!(sub.graph.num_edges(), expected);
    }

    #[test]
    fn pagerank_is_a_distribution_and_cc_partition_edges(edges in edges_strategy(40, 150)) {
        let g = graph_from_edges(40, &edges);
        let pr = analytics::pagerank(&g, 0.85, 25);
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "PageRank sums to 1, got {sum}");
        prop_assert!(pr.iter().all(|&p| p > 0.0));

        let (labels, count) = analytics::connected_components(&g);
        // Labels are component-minimal representatives.
        for v in 0..40u32 {
            prop_assert!(labels[v as usize] <= v);
        }
        // Edges never cross components.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), count);
    }

    #[test]
    fn weight_kinds_are_positive_and_consistent(edges in edges_strategy(30, 100)) {
        let g = graph_from_edges(30, &edges);
        let w = VertexWeights::build(
            &g,
            &[
                WeightKind::Unit,
                WeightKind::Degree,
                WeightKind::NeighborDegreeSum,
                WeightKind::pagerank_default(),
            ],
        );
        for j in 0..w.dims() {
            prop_assert!(w.dim(j).iter().all(|&x| x > 0.0));
            let total: f64 = w.dim(j).iter().sum();
            prop_assert!((w.total(j) - total).abs() < 1e-9);
        }
        // Degree weights match degrees (with the isolated-vertex floor).
        for v in g.vertices() {
            prop_assert_eq!(w.weight(1, v), g.degree(v).max(1) as f64);
        }
    }

    #[test]
    fn generators_produce_simple_graphs(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graphs = vec![
            gen::erdos_renyi(100, 300, &mut rng),
            gen::barabasi_albert(100, 3, &mut rng),
            gen::rmat(gen::RmatConfig::graph500(7, 8), &mut rng),
        ];
        for g in graphs {
            for v in g.vertices() {
                let adj = g.neighbors(v);
                prop_assert!(!adj.contains(&v), "self-loop at {v}");
                prop_assert!(adj.windows(2).all(|w| w[0] < w[1]), "parallel edges at {v}");
            }
        }
    }

    #[test]
    fn alias_table_never_emits_zero_weight_outcomes(
        weights in proptest::collection::vec(0.0..5.0f64, 2..20),
        seed in 0u64..100,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = gen::AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng) as usize;
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {i}");
        }
    }
}
