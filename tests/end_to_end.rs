//! Cross-crate integration tests: generator → weights → partitioners →
//! metrics → BSP simulator, exercised through the public facade API.

use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn proxy(n: usize, seed: u64) -> CommunityGraph {
    community_graph(
        &CommunityGraphConfig::social(n),
        &mut StdRng::seed_from_u64(seed),
    )
}

#[test]
fn gd_beats_hash_and_respects_balance_end_to_end() {
    let cg = proxy(4000, 1);
    let weights = VertexWeights::vertex_edge(&cg.graph);
    let gd = GdPartitioner::new(GdConfig::with_epsilon(0.03));

    for k in [2usize, 4, 8] {
        let p = gd.partition(&cg.graph, &weights, k, 11).expect("gd");
        let h = HashPartitioner
            .partition(&cg.graph, &weights, k, 11)
            .expect("hash");
        let pq = p.quality(&cg.graph, &weights);
        let hq = h.quality(&cg.graph, &weights);
        assert!(
            pq.edge_locality > hq.edge_locality + 0.15,
            "k={k}: GD {} must clearly beat hash {}",
            pq.edge_locality,
            hq.edge_locality
        );
        assert!(
            pq.max_imbalance <= 0.04,
            "k={k}: imbalance {}",
            pq.max_imbalance
        );
    }
}

#[test]
fn every_partitioner_produces_a_valid_partition() {
    let cg = proxy(1500, 2);
    let weights = VertexWeights::vertex_edge(&cg.graph);
    let gd = GdPartitioner::new(GdConfig {
        iterations: 40,
        ..GdConfig::with_epsilon(0.05)
    });
    let spinner = SpinnerPartitioner::default();
    let blp = BlpPartitioner::default();
    let shp = ShpPartitioner::default();
    let metis = MetisPartitioner::default();
    let hash = HashPartitioner;
    let algos: [&dyn Partitioner; 6] = [&gd, &spinner, &blp, &shp, &metis, &hash];

    for algo in algos {
        for k in [2usize, 3, 8] {
            let p = algo
                .partition(&cg.graph, &weights, k, 5)
                .unwrap_or_else(|e| panic!("{} failed for k={k}: {e}", algo.name()));
            assert_eq!(p.num_vertices(), 1500, "{}", algo.name());
            assert_eq!(p.num_parts(), k, "{}", algo.name());
            assert_eq!(p.sizes().iter().sum::<usize>(), 1500, "{}", algo.name());
            let loc = p.edge_locality(&cg.graph);
            assert!(
                (0.0..=1.0).contains(&loc),
                "{}: locality {loc}",
                algo.name()
            );
        }
    }
}

#[test]
fn partition_feeds_bsp_simulator() {
    let cg = proxy(2000, 3);
    let weights = VertexWeights::vertex_edge(&cg.graph);
    let gd = GdPartitioner::new(GdConfig {
        iterations: 40,
        ..GdConfig::with_epsilon(0.05)
    });
    let p = gd.partition(&cg.graph, &weights, 4, 7).expect("gd");
    let h = HashPartitioner
        .partition(&cg.graph, &weights, 4, 7)
        .expect("hash");

    let pr = PageRank::default();
    let engine_gd = BspEngine::new(&cg.graph, &p, CostModel::default());
    let engine_h = BspEngine::new(&cg.graph, &h, CostModel::default());
    let (gd_stats, gd_ranks) = engine_gd.run(&pr);
    let (h_stats, h_ranks) = engine_h.run(&pr);

    // The computation result must be partition-independent.
    for (a, b) in gd_ranks.iter().zip(&h_ranks) {
        assert!(
            (a - b).abs() < 1e-12,
            "PageRank must not depend on placement"
        );
    }
    // ... but the communication must reflect the locality difference.
    assert!(
        gd_stats.total_remote_bytes() < h_stats.total_remote_bytes() / 2,
        "GD placement must at least halve remote traffic: {} vs {}",
        gd_stats.total_remote_bytes(),
        h_stats.total_remote_bytes()
    );
}

#[test]
fn all_four_apps_run_on_a_gd_partition() {
    let cg = proxy(1200, 4);
    let weights = VertexWeights::vertex_edge(&cg.graph);
    let gd = GdPartitioner::new(GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(0.05)
    });
    let p = gd.partition(&cg.graph, &weights, 4, 9).expect("gd");
    let engine = BspEngine::new(&cg.graph, &p, CostModel::default());

    let (pr_stats, _) = engine.run(&PageRank {
        damping: 0.85,
        iterations: 10,
    });
    assert_eq!(pr_stats.num_supersteps(), 11);

    let (cc_stats, labels) = engine.run(&ConnectedComponents::default());
    assert!(cc_stats.num_supersteps() <= 50);
    let (reference, _) = mdbgp::graph::analytics::connected_components(&cg.graph);
    assert_eq!(labels, reference, "BSP CC must agree with union-find");

    let (mf_stats, counts) = engine.run(&MutualFriends);
    assert_eq!(mf_stats.num_supersteps(), 2);
    assert!(
        counts.iter().any(|&c| c > 0),
        "community graphs have triangles"
    );

    let (hc_stats, hc_labels) = engine.run(&HypergraphClustering::default());
    assert!(hc_stats.num_supersteps() >= 2);
    let distinct: std::collections::HashSet<u32> = hc_labels.into_iter().collect();
    assert!(distinct.len() < 1200, "clustering must merge labels");
}

#[test]
fn weight_kinds_compose_for_high_dimensional_balance() {
    let cg = proxy(1500, 6);
    let weights = VertexWeights::build(
        &cg.graph,
        &[
            WeightKind::Unit,
            WeightKind::Degree,
            WeightKind::NeighborDegreeSum,
            WeightKind::pagerank_default(),
        ],
    );
    let gd = GdPartitioner::new(GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(0.08)
    });
    let p = gd.partition(&cg.graph, &weights, 2, 13).expect("gd d=4");
    assert!(
        p.max_imbalance(&weights) <= 0.09,
        "4-dimensional balance within ε: {}",
        p.max_imbalance(&weights)
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the prelude exposes the whole workflow; the
    // assertions are token usages of each re-exported type.
    let g = mdbgp::graph::gen::two_cliques(6, 1);
    let w = VertexWeights::unit(12);
    let p = Partition::new(vec![0; 12], 1);
    assert_eq!(p.num_parts(), 1);
    let q: PartitionQuality = p.quality(&g, &w);
    assert_eq!(q.k, 1);
    let _cfg: GdConfig = GdConfig::default();
    let _m: ProjectionMethod = ProjectionMethod::Exact;
    let _s: StepSchedule = StepSchedule::FixedLength { factor: 2.0 };
    let _b = GraphBuilder::new(3);
}
