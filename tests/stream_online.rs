//! End-to-end streaming test: bootstrap on a prefix of a community graph,
//! replay the rest as an online stream, and check the ε-guarantee holds
//! after every batch while locality stays ahead of fresh Hash placement.

use mdbgp::graph::InducedSubgraph;
use mdbgp::prelude::*;
use mdbgp::stream::UpdateBatch;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.05;
const K: usize = 4;

#[test]
fn replayed_stream_keeps_epsilon_and_beats_hash_locality() {
    // The "full history" graph; the first `n0` vertices are the bootstrap
    // snapshot, the rest arrive online with their backward edges.
    let n = 3000;
    let n0 = 2400;
    let cg = community_graph(
        &CommunityGraphConfig::social(n),
        &mut StdRng::seed_from_u64(11),
    );
    let full = cg.graph;

    let prefix: Vec<u32> = (0..n0 as u32).collect();
    let boot = InducedSubgraph::extract(&full, &prefix);
    assert_eq!(boot.original, prefix, "prefix extraction keeps ids");
    let boot_weights = VertexWeights::vertex_edge(&boot.graph);

    let mut cfg = mdbgp::stream::StreamConfig::new(K, EPS);
    cfg.gd = GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(EPS)
    };
    let mut sp =
        mdbgp::stream::StreamingPartitioner::bootstrap(boot.graph.clone(), boot_weights, cfg)
            .expect("bootstrap");
    assert!(sp.max_imbalance() <= EPS + 1e-9);

    // Replay the remaining vertices in batches; each arrives with its
    // edges to already-present vertices and a degree-at-arrival weight.
    let batch_size = 100;
    let mut arrived = n0 as u32;
    while (arrived as usize) < n {
        let mut batch = UpdateBatch::new();
        let end = ((arrived as usize + batch_size).min(n)) as u32;
        for v in arrived..end {
            let backward: Vec<u32> = full
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| u < v)
                .collect();
            let degree_weight = backward.len().max(1) as f64;
            batch.add_vertex(vec![1.0, degree_weight], backward);
        }
        arrived = end;
        let report = sp.ingest(&batch).expect("ingest");
        assert!(
            report.max_imbalance <= EPS + 1e-9,
            "ε violated after batch ending at {arrived}: {}",
            report.max_imbalance
        );
    }

    assert_eq!(sp.graph().num_vertices(), n);
    let telemetry = sp.telemetry();
    assert_eq!(telemetry.vertices_placed, n - n0);

    // The online graph must equal the full graph minus forward-only
    // artifacts: every full edge was either in the bootstrap prefix or
    // carried by the later endpoint, so the edge sets match exactly.
    assert_eq!(sp.graph().num_edges(), full.num_edges());

    // Quality: no worse than freshly hashing the final graph (the
    // locality bar any placement-aware scheme must clear), under the
    // weights the stream actually balanced.
    let online = sp.partition();
    let stream_weights = sp.graph().weights().clone();
    let hash = HashPartitioner
        .partition(&full, &stream_weights, K, 11)
        .expect("hash");
    let online_loc = online.edge_locality(&full);
    let hash_loc = hash.edge_locality(&full);
    assert!(
        online_loc >= hash_loc,
        "online locality {online_loc} must be >= hash {hash_loc}"
    );

    // Serving-path consistency: O(1) lookups agree with the snapshot.
    for v in [0u32, (n0 / 2) as u32, (n - 1) as u32] {
        assert_eq!(sp.shard_of(v), online.part_of(v));
    }
}

#[test]
fn drift_heavy_stream_stays_within_epsilon() {
    // Edge insertions plus adversarial weight drift concentrated on one
    // shard; the drift telemetry must trigger refinement and hold ε.
    let n = 1500;
    let cg = community_graph(
        &CommunityGraphConfig::social(n),
        &mut StdRng::seed_from_u64(23),
    );
    let weights = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = mdbgp::stream::StreamConfig::new(K, EPS);
    cfg.gd = GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(EPS)
    };
    cfg.max_rebalance_moves = 2048;
    let mut sp = mdbgp::stream::StreamingPartitioner::bootstrap(cg.graph.clone(), weights, cfg)
        .expect("bootstrap");

    let mut rng = StdRng::seed_from_u64(5);
    use rand::Rng;
    for round in 0..4 {
        let mut batch = UpdateBatch::new();
        // Random new friendships.
        for _ in 0..50 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            batch.add_edge(u, v);
        }
        // Activity drift: one shard's vertices get hot.
        let hot = round % K as u32;
        for v in (0..n as u32).filter(|&v| sp.shard_of(v) == hot).take(150) {
            batch.set_weight(v, 0, 2.5);
        }
        let report = sp.ingest(&batch).expect("ingest");
        assert!(
            report.max_imbalance <= EPS + 1e-9,
            "round {round}: ε violated, imbalance {}",
            report.max_imbalance
        );
    }
    assert!(
        sp.telemetry().refinements >= 1,
        "drift must have triggered refinement"
    );
}
