//! # mdbgp — Multi-Dimensional Balanced Graph Partitioning
//!
//! A from-scratch Rust reproduction of *"Multi-Dimensional Balanced Graph
//! Partitioning via Projected Gradient Descent"* (Avdiukhin, Pupyrev,
//! Yaroslavtsev — VLDB 2019).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`graph`] — CSR graphs, multi-dimensional vertex weights, generators,
//!   partitions and quality metrics ([`mdbgp_graph`]),
//! * [`core`] — the paper's `GD` algorithm: projected gradient descent on
//!   the continuous relaxation, exact/alternating/Dykstra projections,
//!   adaptive steps, vertex fixing, randomized rounding and recursive
//!   k-way partitioning ([`mdbgp_core`]),
//! * [`baselines`] — Hash, Spinner, BLP, SHP and a METIS-like multilevel
//!   multi-constraint partitioner ([`mdbgp_baselines`]),
//! * [`bsp`] — a Giraph-like vertex-centric BSP simulator with a worker
//!   cost model, used to evaluate the impact of partitioning on distributed
//!   graph processing ([`mdbgp_bsp`]),
//! * [`stream`] — online streaming ingestion and incremental partition
//!   maintenance: a delta-buffered [`mdbgp_stream::DynamicGraph`],
//!   multi-dimensional greedy placement of arriving vertices, drift
//!   telemetry, and warm-started GD refinement that absorbs update batches
//!   without a from-scratch solve ([`mdbgp_stream`]),
//! * [`obs`] — the zero-dependency metrics/tracing subsystem behind the
//!   streaming engine's instrumentation: counters, gauges, log2-bucket
//!   latency histograms, RAII span timers and a bounded event journal,
//!   with JSON and Prometheus-text exposition ([`mdbgp_obs`]).
//!
//! ## Documentation
//!
//! Two workspace-level documents complement the per-crate rustdoc:
//!
//! * `docs/ARCHITECTURE.md` — the crate map, the streaming engine's
//!   six-stage batch lifecycle, the warm-start + delta-gradient GD
//!   design, snapshot/id-epoch rules, and a paper-section → module
//!   pointer table;
//! * `docs/BENCHMARKS.md` — the perf-record format (v1–v5), what each CI
//!   gate checks, machine-normalization rules, and the baseline refresh
//!   procedure.
//!
//! ## Quickstart
//!
//! ```
//! use mdbgp::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small community-structured graph standing in for a social network.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = CommunityGraphConfig::social(2000);
//! let cg = community_graph(&cfg, &mut rng);
//!
//! // Balance simultaneously on vertex count and degree (vertex-edge
//! // partitioning), allowing 3% imbalance.
//! let weights = VertexWeights::vertex_edge(&cg.graph);
//! let gd = GdPartitioner::new(GdConfig::with_epsilon(0.03));
//! let partition = gd.partition(&cg.graph, &weights, 2, 7).unwrap();
//!
//! let q = partition.quality(&cg.graph, &weights);
//! assert!(q.max_imbalance <= 0.03 + 1e-6);
//! assert!(q.edge_locality > 0.5);
//! ```

pub use mdbgp_baselines as baselines;
pub use mdbgp_bsp as bsp;
pub use mdbgp_core as core;
pub use mdbgp_graph as graph;
pub use mdbgp_obs as obs;
pub use mdbgp_stream as stream;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mdbgp_baselines::{
        BlpPartitioner, HashPartitioner, MetisPartitioner, Partitioner, ShpPartitioner,
        SpinnerPartitioner,
    };
    pub use mdbgp_bsp::{
        apps::{ConnectedComponents, HypergraphClustering, MutualFriends, PageRank},
        BspEngine, CostModel, JobStats,
    };
    pub use mdbgp_core::{
        GdConfig, GdPartitioner, KWayGdPartitioner, ProjectionMethod, StepSchedule,
    };
    pub use mdbgp_graph::gen::{community_graph, CommunityGraph, CommunityGraphConfig};
    pub use mdbgp_graph::{
        Graph, GraphBuilder, Partition, PartitionQuality, VertexWeights, WeightKind,
    };
    pub use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
}
