//! Multi-dimensional balance with custom weight functions (paper App. C):
//! balance simultaneously on vertex count, degree, 2-hop-neighbourhood
//! proxy and PageRank — four unrelated dimensions — and watch METIS-style
//! multilevel partitioning lose balance where GD holds it.
//!
//! Run with: `cargo run --release --example multidim_weights`

use mdbgp::baselines::MetisPartitioner;
use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut config = CommunityGraphConfig::social(10_000);
    config.degree_exponent = 2.1; // heavier skew = harder balance
    let cg = community_graph(&config, &mut rng);
    let graph = &cg.graph;

    // Four weight dimensions. PageRank models per-vertex request load;
    // the neighbour-degree sum approximates 2-hop neighbourhood size.
    let weights = VertexWeights::build(
        graph,
        &[
            WeightKind::Unit,
            WeightKind::Degree,
            WeightKind::NeighborDegreeSum,
            WeightKind::pagerank_default(),
        ],
    );
    println!(
        "balancing d = {} dimensions over {} vertices\n",
        weights.dims(),
        graph.num_vertices()
    );

    let gd = GdPartitioner::new(GdConfig::with_epsilon(0.03));
    let metis = MetisPartitioner::default();

    for (name, partition) in [
        ("GD", gd.partition(graph, &weights, 2, 3).expect("gd")),
        (
            "METIS",
            metis.partition(graph, &weights, 2, 3).expect("metis"),
        ),
    ] {
        let q = partition.quality(graph, &weights);
        println!("{name:>6}: locality {:.2}%", q.edge_locality * 100.0);
        for (j, imb) in q.imbalance.iter().enumerate() {
            let dim = ["vertices", "degrees", "nbr-degree-sum", "pagerank"][j];
            println!("        dim {j} ({dim:>14}): imbalance {:.2}%", imb * 100.0);
        }
    }
    println!(
        "\nThe continuous relaxation handles all four constraints uniformly;\n\
         discrete multilevel refinement runs out of feasible moves (Table 3)."
    );
}
