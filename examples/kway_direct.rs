//! Recursive bisection vs the direct k-way relaxation (paper §3.3).
//!
//! Three equal communities with k = 3 is the canonical instance where
//! recursion is structurally handicapped: its first cut must split the
//! graph 2:1, so some community is torn apart no matter how good the
//! bisections are. The direct relaxation assigns each vertex a probability
//! row over all three parts simultaneously and can keep every community
//! intact — at the price of one gradient mat-vec *per part* per iteration
//! (the `O(k·|E|)` communication the paper cites).
//!
//! Run with: `cargo run --release --example kway_direct`

use mdbgp::core::KWayGdPartitioner;
use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Three planted communities of equal size, lightly interconnected.
    let mut rng = StdRng::seed_from_u64(3);
    let mut cfg = CommunityGraphConfig::social(6000);
    cfg.min_community = 2000;
    cfg.max_community = 2000;
    cfg.mixing = 0.05;
    let cg = community_graph(&cfg, &mut rng);
    let graph = &cg.graph;
    let weights = VertexWeights::vertex_edge(graph);
    println!(
        "{} vertices, {} edges, {} planted communities, k = 3\n",
        graph.num_vertices(),
        graph.num_edges(),
        cg.num_communities
    );

    let gd_cfg = GdConfig::with_epsilon(0.05);
    let recursive = GdPartitioner::new(gd_cfg.clone());
    let direct = KWayGdPartitioner::new(gd_cfg);

    for (name, partitioner) in [
        ("recursive bisection", &recursive as &dyn Partitioner),
        ("direct k-way", &direct),
    ] {
        let start = std::time::Instant::now();
        let p = partitioner
            .partition(graph, &weights, 3, 11)
            .expect("partition");
        let elapsed = start.elapsed();
        let q = p.quality(graph, &weights);
        println!(
            "{name:>20}: locality {:.2}%  max imbalance {:.2}%  ({:.2}s)",
            q.edge_locality * 100.0,
            q.max_imbalance * 100.0,
            elapsed.as_secs_f64()
        );
    }
    println!(
        "\nWith three equal communities the direct relaxation can match the\n\
         planted structure exactly, while recursion's 2:1 first cut must\n\
         tear one community apart."
    );
}
