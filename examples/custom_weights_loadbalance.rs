//! Load balancing with a user-defined activity weight (paper §1: "various
//! weights modeling expected vertex activity can be used — historical data
//! on individual vertex load, proxy values such as PageRank").
//!
//! We synthesize a per-vertex "request rate" that is *not* derivable from
//! the topology (hot products, celebrity accounts, …), then require balance
//! on vertices, edges AND load — the fully general MDBGP.
//!
//! Run with: `cargo run --release --example custom_weights_loadbalance`

use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let cg = community_graph(&CommunityGraphConfig::social(15_000), &mut rng);
    let graph = &cg.graph;
    let n = graph.num_vertices();

    // Synthetic request log: 5% of vertices are "hot" with 50–200 req/s,
    // the rest 1–10 req/s. Deliberately uncorrelated with degree.
    let load: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.05 {
                rng.gen_range(50.0..200.0)
            } else {
                rng.gen_range(1.0..10.0)
            }
        })
        .collect();

    // d = 3: vertices, edges, and the custom load column.
    let weights = VertexWeights::from_vectors(vec![
        vec![1.0; n],
        (0..n)
            .map(|v| graph.degree(v as u32).max(1) as f64)
            .collect(),
        load,
    ]);

    let gd = GdPartitioner::new(GdConfig::with_epsilon(0.05));
    let partition = gd.partition(graph, &weights, 4, 3).expect("partition");
    let q = partition.quality(graph, &weights);

    println!("k = 4 parts, d = 3 dimensions (vertices / edges / request load)");
    println!("edge locality: {:.2}%", q.edge_locality * 100.0);
    for (j, imb) in q.imbalance.iter().enumerate() {
        let name = ["vertices", "edges", "request load"][j];
        println!("  {name:>12}: imbalance {:.2}%  (ε = 5%)", imb * 100.0);
    }
    assert!(
        q.max_imbalance <= 0.05 + 1e-6,
        "all three dimensions within ε"
    );

    // Show per-part loads to make the balance tangible.
    let loads = partition.loads(&weights);
    println!("\nper-part request load (req/s):");
    for (i, l) in loads.iter().enumerate() {
        println!("  part {i}: {:>10.0}", l[2]);
    }
}
