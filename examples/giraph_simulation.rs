//! Distributed graph processing end-to-end (the paper's §4.2 workflow):
//! partition a graph with different policies, run PageRank on a simulated
//! 16-worker Giraph cluster, and compare iteration times and network
//! traffic.
//!
//! Run with: `cargo run --release --example giraph_simulation`

use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let cg = community_graph(&CommunityGraphConfig::social(30_000), &mut rng);
    let graph = &cg.graph;
    const WORKERS: usize = 16;

    // Three partitioning policies: hash, vertex-only GD, vertex+edge GD.
    let unit = VertexWeights::build(graph, &[WeightKind::Unit]);
    let both = VertexWeights::vertex_edge(graph);
    let gd = GdPartitioner::new(GdConfig::with_epsilon(0.03));

    let policies = [
        (
            "hash",
            HashPartitioner.partition(graph, &unit, WORKERS, 5).unwrap(),
        ),
        ("vertex GD", gd.partition(graph, &unit, WORKERS, 5).unwrap()),
        (
            "vertex-edge GD",
            gd.partition(graph, &both, WORKERS, 5).unwrap(),
        ),
    ];

    println!("PageRank (30 iterations) on {WORKERS} simulated workers:\n");
    println!(
        "{:>16} {:>11} {:>14} {:>14} {:>12}",
        "policy", "locality %", "iteration time", "straggler", "remote MB"
    );
    let mut baseline = None;
    for (name, partition) in &policies {
        let engine = BspEngine::new(graph, partition, CostModel::default());
        let (stats, ranks) = engine.run(&PageRank::default());
        // Sanity: PageRank mass is conserved by the BSP run.
        let mass: f64 = ranks.iter().sum();
        assert!((mass - 1.0).abs() < 0.2, "rank mass {mass}");

        let (mean, max, _) = stats.runtime_summary();
        let total = stats.total_time();
        let speedup = match baseline {
            None => {
                baseline = Some(total);
                "1.00x (baseline)".to_string()
            }
            Some(b) => format!("{:.2}x", b / total),
        };
        println!(
            "{:>16} {:>11.1} {:>14} {:>14} {:>12.1}   {speedup}",
            name,
            partition.edge_locality(graph) * 100.0,
            format!("{:.0}", total),
            format!("{:.2}x", max / mean),
            stats.total_remote_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
    println!(
        "\nThe BSP barrier makes every superstep as slow as its slowest worker:\n\
         balancing only vertices leaves an edge-overloaded straggler, while\n\
         two-dimensional balance keeps workers even AND cuts remote traffic."
    );
}
