//! Quickstart: partition a social-network-like graph into 8 parts,
//! balancing vertex and edge counts simultaneously with the paper's GD
//! algorithm, and compare against hash partitioning.
//!
//! Run with: `cargo run --release --example quickstart`

use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic social network: 20k vertices, power-law degrees,
    //    planted communities (stand-in for the paper's SNAP graphs).
    let mut rng = StdRng::seed_from_u64(42);
    let config = CommunityGraphConfig::social(20_000);
    let cg = community_graph(&config, &mut rng);
    let graph = &cg.graph;
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // 2. The two balance dimensions of "vertex-edge partitioning":
    //    w1(v) = 1 (vertex counts) and w2(v) = deg(v) (edge counts).
    let weights = VertexWeights::vertex_edge(graph);

    // 3. Run GD: projected gradient descent on the continuous relaxation,
    //    recursive bisection for k = 8, at most 3% imbalance per dimension.
    let gd = GdPartitioner::new(GdConfig::with_epsilon(0.03));
    let partition = gd.partition(graph, &weights, 8, 7).expect("GD partition");
    let q = partition.quality(graph, &weights);
    println!("GD:   {q}");

    // 4. Baseline: Giraph's default hash partitioning.
    let hash = HashPartitioner
        .partition(graph, &weights, 8, 7)
        .expect("hash partition");
    let hq = hash.quality(graph, &weights);
    println!("Hash: {hq}");

    assert!(q.edge_locality > hq.edge_locality);
    println!(
        "\nGD keeps {:.1}% of edges local vs {:.1}% for hash — fewer cut edges\n\
         means less cross-worker traffic in a distributed graph system, while\n\
         every part stays within ±3% on BOTH vertex and edge counts.",
        q.edge_locality * 100.0,
        hq.edge_locality * 100.0
    );
}
