//! The projection step in isolation (paper §2.2–2.3): project a point
//! onto `B∞ ∩ S¹ ∩ S²` with all four algorithms and compare distances,
//! feasibility and cost — a miniature of the paper's Table 1.
//!
//! Run with: `cargo run --release --example projection_playground`

use mdbgp::core::config::ProjectionMethod;
use mdbgp::core::feasible::FeasibleRegion;
use mdbgp::core::projection::project;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    const N: usize = 50_000;
    let mut rng = StdRng::seed_from_u64(2024);

    // Two balance dimensions: unit weights and skewed "degree" weights.
    let w1 = vec![1.0; N];
    let w2: Vec<f64> = (0..N)
        .map(|_| 1.0 + rng.gen_range(0.0..30.0f64).powf(1.5))
        .collect();
    let region = FeasibleRegion::symmetric(vec![w1, w2], 0.01);

    // A far-out point, like a large gradient step.
    let y: Vec<f64> = (0..N).map(|_| rng.gen_range(-3.0..3.0)).collect();

    println!("projecting a random point onto B-inf ∩ S1 ∩ S2, n = {N}, eps = 1%\n");
    println!(
        "{:>22} {:>12} {:>16} {:>10}",
        "method", "‖x − y‖", "max violation", "time ms"
    );
    for method in [
        ProjectionMethod::OneShotAlternating,
        ProjectionMethod::AlternatingConverged,
        ProjectionMethod::Dykstra,
        ProjectionMethod::Exact,
    ] {
        let start = Instant::now();
        let x = project(method, &y, &region);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let dist = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!(
            "{:>22} {:>12.4} {:>16.2e} {:>10.2}",
            format!("{method:?}"),
            dist,
            region.max_violation(&x),
            ms
        );
    }
    println!(
        "\nDykstra and Exact agree on the true projection (smallest ‖x − y‖\n\
         with zero violation); one-shot alternating is the cheap approximation\n\
         GD uses inside its hot loop."
    );
}
