//! Online streaming: bootstrap a partition with GD, then keep it valid and
//! local while the graph grows and drifts underneath it — new vertices are
//! placed greedily in O(deg), and warm-started GD refinement absorbs churn
//! for a small fraction of a from-scratch solve.
//!
//! Run with: `cargo run --release --example streaming_online [THREADS]`
//!
//! The optional `THREADS` argument (default 1) sizes the worker pool of
//! the incremental path — bootstrap GD mat-vec, parallel pairwise
//! refinement rounds, and the placement sweep — so the speedup is easy to
//! reproduce locally: compare `… streaming_online 1` against
//! `… streaming_online 4` on a multi-core box.

use mdbgp::graph::InducedSubgraph;
use mdbgp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const K: usize = 8;
const EPS: f64 = 0.05;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("THREADS must be a positive integer"))
        .unwrap_or(1)
        .max(1);
    println!("worker threads: {threads}\n");

    // 1. The "full history" graph: the first 16k vertices are today's
    //    snapshot, the remaining 4k arrive over the next hours.
    let mut rng = StdRng::seed_from_u64(7);
    let total = 20_000;
    let bootstrap_n = 16_000;
    let cg = community_graph(&CommunityGraphConfig::social(total), &mut rng);
    let full = cg.graph;

    let prefix: Vec<u32> = (0..bootstrap_n as u32).collect();
    let boot = InducedSubgraph::extract(&full, &prefix);
    let weights = VertexWeights::vertex_edge(&boot.graph);

    // 2. Bootstrap: one offline GD solve on the snapshot.
    let mut cfg = StreamConfig::new(K, EPS).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(EPS)
    };
    let start = Instant::now();
    let mut sp =
        StreamingPartitioner::bootstrap(boot.graph.clone(), weights, cfg).expect("bootstrap");
    println!(
        "bootstrap ({bootstrap_n} vertices) in {:.2}s: locality {:.1}%, imbalance {:.2}%\n",
        start.elapsed().as_secs_f64(),
        sp.store().edge_locality() * 100.0,
        sp.max_imbalance() * 100.0
    );

    // 3. Stream the rest: each batch brings arrivals (with their edges to
    //    already-present vertices), fresh friendships, and activity drift.
    let mut arrived = bootstrap_n as u32;
    let mut batch_no = 0;
    while (arrived as usize) < total {
        batch_no += 1;
        let end = (arrived + 500).min(total as u32);
        let mut batch = UpdateBatch::new();
        for v in arrived..end {
            let backward: Vec<u32> = full
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| u < v)
                .collect();
            let degree_weight = backward.len().max(1) as f64;
            batch.add_vertex(vec![1.0, degree_weight], backward);
        }
        for _ in 0..200 {
            batch.add_edge(rng.gen_range(0..arrived), rng.gen_range(0..arrived));
        }
        for _ in 0..100 {
            batch.set_weight(rng.gen_range(0..arrived), 0, rng.gen_range(1.0..2.5));
        }
        arrived = end;

        let start = Instant::now();
        let report = sp.ingest(&batch).expect("ingest");
        println!(
            "batch {batch_no}: {:5.1}ms  imbalance {:.2}%  locality {:.1}%{}",
            start.elapsed().as_secs_f64() * 1e3,
            report.max_imbalance * 100.0,
            report.edge_locality * 100.0,
            if report.refined { "  <- refined" } else { "" }
        );
        assert!(report.max_imbalance <= EPS + 1e-9, "ε-guarantee violated");
    }

    // 4. The serving path stays O(1) throughout.
    let t = sp.telemetry();
    println!(
        "\n{} vertices placed, {} refinements; vertex 19999 lives on shard {}",
        t.vertices_placed,
        t.refinements,
        sp.shard_of(19_999)
    );
}
