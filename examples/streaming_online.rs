//! Online streaming: bootstrap a partition with GD, then keep it valid and
//! local while the graph grows, churns and drifts underneath it — new
//! vertices are placed greedily in O(deg), removals tombstone in O(deg)
//! and release their capacity immediately, and warm-started GD refinement
//! absorbs the churn for a small fraction of a from-scratch solve.
//!
//! Run with: `cargo run --release --example streaming_online [THREADS]`
//!
//! The optional `THREADS` argument (default 1) sizes the worker pool of
//! the incremental path — bootstrap GD mat-vec, parallel pairwise
//! refinement rounds, and the placement sweep — so the speedup is easy to
//! reproduce locally: compare `… streaming_online 1` against
//! `… streaming_online 4` on a multi-core box.
//!
//! Removal demo: each batch also retires a few users and friendships. A
//! purging compaction renumbers vertex ids and reports the old→new map in
//! `BatchReport::remap`; the example keeps an original→current table up to
//! date the same way a real router would.

use mdbgp::graph::InducedSubgraph;
use mdbgp::prelude::*;
use mdbgp::stream::TOMBSTONE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const K: usize = 8;
const EPS: f64 = 0.05;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("THREADS must be a positive integer"))
        .unwrap_or(1)
        .max(1);
    println!("worker threads: {threads}\n");

    // 1. The "full history" graph: the first 16k vertices are today's
    //    snapshot, the remaining 4k arrive over the next hours.
    let mut rng = StdRng::seed_from_u64(7);
    let total = 20_000;
    let bootstrap_n = 16_000;
    let cg = community_graph(&CommunityGraphConfig::social(total), &mut rng);
    let full = cg.graph;

    let prefix: Vec<u32> = (0..bootstrap_n as u32).collect();
    let boot = InducedSubgraph::extract(&full, &prefix);
    let weights = VertexWeights::vertex_edge(&boot.graph);

    // 2. Bootstrap: one offline GD solve on the snapshot.
    let mut cfg = StreamConfig::new(K, EPS).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 60,
        ..GdConfig::with_epsilon(EPS)
    };
    let start = Instant::now();
    let mut sp =
        StreamingPartitioner::bootstrap(boot.graph.clone(), weights, cfg).expect("bootstrap");
    println!(
        "bootstrap ({bootstrap_n} vertices) in {:.2}s: locality {:.1}%, imbalance {:.2}%\n",
        start.elapsed().as_secs_f64(),
        sp.store().edge_locality() * 100.0,
        sp.max_imbalance() * 100.0
    );

    // Original-id → current-engine-id table; purges remap engine ids, so
    // anything holding vertex ids (here: the replay itself) rewrites its
    // references from `BatchReport::remap`.
    let mut cur_id: Vec<u32> = (0..bootstrap_n as u32).collect();

    // 3. Stream the rest: each batch brings arrivals (with their edges to
    //    already-present vertices), fresh friendships, activity drift —
    //    and churn: some users and friendships leave.
    let mut arrived = bootstrap_n as u32;
    let mut batch_no = 0;
    while (arrived as usize) < total {
        batch_no += 1;
        let end = (arrived + 500).min(total as u32);
        let mut batch = UpdateBatch::new();
        // Under churn the engine recycles tombstoned ids (most recently
        // freed first) before growing the id space. Mirror its free list
        // so edges between same-batch arrivals resolve; the ingest report
        // confirms the actual ids below.
        let mut sim_free: Vec<u32> = sp.graph().free_ids().to_vec();
        let mut next_fresh = sp.graph().num_vertices() as u32;
        for v in arrived..end {
            let backward: Vec<u32> = full
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| u < v)
                .map(|u| cur_id[u as usize])
                .filter(|&u| u != TOMBSTONE)
                .collect();
            let degree_weight = backward.len().max(1) as f64;
            batch.add_vertex(vec![1.0, degree_weight], backward);
            cur_id.push(sim_free.pop().unwrap_or_else(|| {
                let id = next_fresh;
                next_fresh += 1;
                id
            }));
        }
        let live = |cur_id: &[u32], orig: u32| cur_id[orig as usize] != TOMBSTONE;
        for _ in 0..200 {
            let (u, v) = (rng.gen_range(0..arrived), rng.gen_range(0..arrived));
            if live(&cur_id, u) && live(&cur_id, v) {
                batch.add_edge(cur_id[u as usize], cur_id[v as usize]);
            }
        }
        for _ in 0..100 {
            let v = rng.gen_range(0..arrived);
            if live(&cur_id, v) {
                batch.set_weight(cur_id[v as usize], 0, rng.gen_range(1.0..2.5));
            }
        }
        // Churn: ~60 departures and ~60 unfriendings per batch. Vertex
        // removals go last so earlier updates still resolve.
        let mut leavers: Vec<u32> = Vec::new();
        for _ in 0..60 {
            let u = rng.gen_range(0..arrived);
            if !live(&cur_id, u) {
                continue;
            }
            let cu = cur_id[u as usize];
            let deg = sp.graph().degree(cu);
            if deg == 0 {
                continue;
            }
            let cv = sp.graph().neighbors(cu).nth(rng.gen_range(0..deg)).unwrap();
            batch.remove_edge(cu, cv);
        }
        for _ in 0..60 {
            let v = rng.gen_range(0..arrived);
            if live(&cur_id, v) && !leavers.contains(&v) {
                leavers.push(v);
            }
        }
        for &v in &leavers {
            batch.remove_vertex(cur_id[v as usize]);
            cur_id[v as usize] = TOMBSTONE;
        }
        arrived = end;

        let start = Instant::now();
        let report = sp.ingest(&batch).expect("ingest");
        if let Some(remap) = &report.remap {
            for slot in cur_id.iter_mut().filter(|s| **s != TOMBSTONE) {
                *slot = remap[*slot as usize];
            }
        }
        // The report's arrival_ids (already post-remap) are authoritative;
        // they must agree with the free-list prediction above.
        for (i, v) in (end - report.arrival_ids.len() as u32..end).enumerate() {
            assert_eq!(
                cur_id[v as usize], report.arrival_ids[i],
                "arrival id prediction diverged for original {v}"
            );
        }
        println!(
            "batch {batch_no}: {:5.1}ms  +{} -{} vertices  imbalance {:.2}%  locality {:.1}%{}{}",
            start.elapsed().as_secs_f64() * 1e3,
            report.vertices_added,
            report.vertices_removed,
            report.max_imbalance * 100.0,
            report.edge_locality * 100.0,
            if report.refined { "  <- refined" } else { "" },
            if report.remap.is_some() {
                "  <- ids remapped"
            } else {
                ""
            }
        );
        assert!(report.max_imbalance <= EPS + 1e-9, "ε-guarantee violated");

        // Kill-and-resume mid-stream: serialize the engine, "crash" (drop
        // it), restore a fresh instance from the bytes and keep streaming
        // on it. The snapshot preserves the id space — and its epoch — so
        // the original→current table above needs no adjustment, and every
        // later batch behaves exactly as if the process had survived.
        if batch_no == 4 {
            let t = Instant::now();
            let mut bytes = Vec::new();
            sp.save_snapshot(&mut bytes).expect("snapshot save");
            let save_ms = t.elapsed().as_secs_f64() * 1e3;
            drop(sp); // the serving process dies here...
            let t = Instant::now();
            sp = StreamingPartitioner::restore(&bytes[..]).expect("snapshot restore");
            println!(
                "  -- killed and warm-restarted from a {} byte snapshot \
                 (save {save_ms:.1}ms, restore {:.1}ms, id epoch {})",
                bytes.len(),
                t.elapsed().as_secs_f64() * 1e3,
                sp.id_epoch()
            );
        }
    }

    // 4. The serving path stays O(1) throughout; look a surviving original
    //    id up through the table.
    let t = sp.telemetry();
    let survivor = (0..total as u32)
        .rev()
        .find(|&v| cur_id[v as usize] != TOMBSTONE)
        .expect("someone survived");
    println!(
        "\n{} placed, {} removed, {} refinements ({} id remaps); original vertex {} now lives \
         on shard {}",
        t.vertices_placed,
        t.vertices_removed,
        t.refinements,
        t.remaps,
        survivor,
        sp.shard_of(cur_id[survivor as usize])
    );
}
